package deploy

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"helcfl/internal/chaos"
	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

// The sim↔deploy conformance fixture: the same campaign expressed twice —
// once through the in-process fl.Engine, once over loopback HTTP through
// deploy.Server/Client — must produce the identical global-model trajectory
// bit-for-bit: same Eq. (20) selections, same Algorithm 3 frequencies, same
// Eq. (18) aggregates. The engine side opts into the wire's float32
// precision (QuantizeBroadcast + QuantizeUploads); the deploy side owes its
// determinism to the server's selection-order aggregation.

// confEnv holds the shared campaign parameters.
type confEnv struct {
	users, rounds int
	seed          int64
	lr            float64
	fraction      float64
	spec          nn.ModelSpec
	userData      []*dataset.Dataset
	test          *dataset.Dataset
	modelBits     float64
}

func newConfEnv(t *testing.T, users, rounds int) *confEnv {
	t.Helper()
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 40 * users, TestN: 80, Noise: 0.7, Seed: 5,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(6)))
	spec := nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4}
	return &confEnv{
		users: users, rounds: rounds,
		seed:      9,
		lr:        0.3,
		fraction:  0.5,
		spec:      spec,
		userData:  dataset.UserDatasets(synth.Train, part),
		test:      synth.Test,
		modelBits: nn.ModelBits(spec.Build(rand.New(rand.NewSource(1)))),
	}
}

// clientInfo is the resource report both sides agree on for user q.
func (e *confEnv) clientInfo(q int) RegisterRequest {
	return RegisterRequest{
		User:        q,
		NumSamples:  e.userData[q].N(),
		FMin:        0.3e9,
		FMax:        0.5e9 + float64(q)*0.1e9,
		TxPower:     0.2,
		ChannelGain: 1.0,
	}
}

// engineDevices mirrors what the deploy server reconstructs at registration.
func (e *confEnv) engineDevices() []*device.Device {
	devs := make([]*device.Device, e.users)
	for q := 0; q < e.users; q++ {
		info := e.clientInfo(q)
		devs[q] = &device.Device{
			ID:              q,
			FMin:            info.FMin,
			FMax:            info.FMax,
			CyclesPerSample: device.DefaultCyclesPerSample,
			Kappa:           device.DefaultKappa,
			TxPower:         info.TxPower,
			ChannelGain:     info.ChannelGain,
			NumSamples:      info.NumSamples,
		}
	}
	return devs
}

func (e *confEnv) newPlanner(devs []*device.Device) (fl.Planner, error) {
	return selection.NewHELCFL(devs, wireless.DefaultChannel(), e.modelBits, core.Params{
		Eta: 0.7, Fraction: e.fraction, StepsPerRound: 1, Clamp: true,
	})
}

// recordingPlanner captures every PlanRound decision.
type recordingPlanner struct {
	inner fl.Planner
	mu    sync.Mutex
	sel   [][]int
	freqs [][]float64
}

func (r *recordingPlanner) Name() string { return r.inner.Name() }

func (r *recordingPlanner) PlanRound(j int) ([]int, []float64) {
	sel, freqs := r.inner.PlanRound(j)
	r.mu.Lock()
	r.sel = append(r.sel, append([]int(nil), sel...))
	r.freqs = append(r.freqs, append([]float64(nil), freqs...))
	r.mu.Unlock()
	return sel, freqs
}

func (r *recordingPlanner) rounds() ([][]int, [][]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sel, r.freqs
}

// runEngine executes the campaign in-process for `rounds` rounds with
// wire-precision quantization, returning the result and the recorded
// decisions.
func (e *confEnv) runEngine(t *testing.T, rounds int) (*fl.Result, *recordingPlanner) {
	t.Helper()
	devs := e.engineDevices()
	planner, err := e.newPlanner(devs)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingPlanner{inner: planner}
	res, err := fl.Run(fl.Config{
		Spec:              e.spec,
		Devices:           devs,
		Channel:           wireless.DefaultChannel(),
		UserData:          e.userData,
		Test:              e.test,
		Planner:           rec,
		LR:                e.lr,
		LocalSteps:        1,
		MaxRounds:         rounds,
		EvalEvery:         rounds, // evaluate round 0 and the final round only
		QuantizeUploads:   true,
		QuantizeBroadcast: true,
		Seed:              e.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// deployOpts tune the loopback campaign for chaos scenarios.
type deployOpts struct {
	script        *chaos.Script // shared fault schedule; nil = clean transport
	maxRetries    int
	baseBackoff   time.Duration
	roundDeadline time.Duration
	quorum        float64
	sink          obs.EventSink
}

// deployResult is everything the loopback campaign produced.
type deployResult struct {
	srv        *Server
	summaries  []RoundSummary
	clientErrs []error
	planner    *recordingPlanner
}

// runDeploy executes the campaign over loopback HTTP and waits for every
// client to exit. Client errors are returned, not fatal — chaos scenarios
// legitimately kill clients.
func (e *confEnv) runDeploy(t *testing.T, opts deployOpts) *deployResult {
	t.Helper()
	var (
		mu        sync.Mutex
		summaries []RoundSummary
	)
	rec := &recordingPlanner{}
	srv, err := NewServer(ServerConfig{
		Spec:          e.spec,
		Seed:          e.seed,
		ExpectedUsers: e.users,
		Rounds:        e.rounds,
		RoundDeadline: opts.roundDeadline,
		Quorum:        opts.quorum,
		Sink:          opts.sink,
		NewPlanner: func(devs []*device.Device) (fl.Planner, error) {
			inner, err := e.newPlanner(devs)
			if err != nil {
				return nil, err
			}
			rec.inner = inner
			return rec, nil
		},
		RoundHook: func(s RoundSummary) {
			mu.Lock()
			summaries = append(summaries, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	errs := make([]error, e.users)
	var wg sync.WaitGroup
	for q := 0; q < e.users; q++ {
		httpClient := http.DefaultClient
		if opts.script != nil {
			httpClient = chaos.NewTransport(opts.script, q).Client()
		}
		c, err := NewClient(ClientConfig{
			BaseURL:      ts.URL,
			Info:         e.clientInfo(q),
			Data:         e.userData[q],
			Spec:         e.spec,
			LR:           e.lr,
			LocalSteps:   1,
			PollInterval: time.Millisecond,
			MaxRetries:   opts.maxRetries,
			BaseBackoff:  opts.baseBackoff,
			HTTPClient:   httpClient,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(q int, c *Client) {
			defer wg.Done()
			errs[q] = c.Run()
		}(q, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deployment did not finish in 60s")
	}
	mu.Lock()
	defer mu.Unlock()
	return &deployResult{srv: srv, summaries: summaries, clientErrs: errs, planner: rec}
}

// bitsEqual reports exact float64 equality (including NaN payloads).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConformanceSimMatchesDeploy is the headline conformance test: a
// multi-round campaign over loopback HTTP with a fault-free transport
// reproduces the in-process engine's global-model trajectory exactly.
func TestConformanceSimMatchesDeploy(t *testing.T) {
	env := newConfEnv(t, 5, 4)

	dep := env.runDeploy(t, deployOpts{})
	for q, err := range dep.clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", q, err)
		}
	}
	if len(dep.summaries) != env.rounds {
		t.Fatalf("deploy closed %d rounds, want %d", len(dep.summaries), env.rounds)
	}

	engRes, engRec := env.runEngine(t, env.rounds)
	engSel, engFreqs := engRec.rounds()
	depSel, depFreqs := dep.planner.rounds()

	// Same Eq. (20) selections and Algorithm 3 frequencies every round.
	if len(engSel) != env.rounds || len(depSel) != env.rounds {
		t.Fatalf("planner rounds: engine %d, deploy %d, want %d", len(engSel), len(depSel), env.rounds)
	}
	for j := 0; j < env.rounds; j++ {
		if !intsEqual(engSel[j], depSel[j]) {
			t.Fatalf("round %d selections diverge: engine %v, deploy %v", j, engSel[j], depSel[j])
		}
		if !bitsEqual(engFreqs[j], depFreqs[j]) {
			t.Fatalf("round %d frequencies diverge: engine %v, deploy %v", j, engFreqs[j], depFreqs[j])
		}
		if s := dep.summaries[j]; s.Partial || !intsEqual(s.Selected, s.Uploaded) {
			t.Fatalf("round %d closed partially on a fault-free transport: %+v", j, s)
		}
	}

	// Same Eq. (18) aggregate after every round: the deploy trajectory is
	// compared against engine prefix runs (the engine is deterministic, so
	// the k-round run is the k-prefix of the full trajectory).
	for j := 0; j < env.rounds; j++ {
		prefixRes, _ := env.runEngine(t, j+1)
		if !bitsEqual(prefixRes.Model.GetFlatParams(), dep.summaries[j].Global) {
			t.Fatalf("global model diverges after round %d", j)
		}
	}

	// And the final served model matches the full engine run bit-for-bit.
	if !bitsEqual(engRes.Model.GetFlatParams(), dep.srv.Global().GetFlatParams()) {
		t.Fatal("final global model diverges between engine and deploy")
	}
}

// TestConformanceDeployIsDeterministic pins that two identical loopback
// campaigns produce the identical trajectory — the property the selection-
// order aggregation fix exists for, since goroutine/arrival order varies
// freely between runs.
func TestConformanceDeployIsDeterministic(t *testing.T) {
	env := newConfEnv(t, 5, 3)
	a := env.runDeploy(t, deployOpts{})
	b := env.runDeploy(t, deployOpts{})
	if len(a.summaries) != len(b.summaries) {
		t.Fatalf("round counts differ: %d vs %d", len(a.summaries), len(b.summaries))
	}
	for j := range a.summaries {
		if !bitsEqual(a.summaries[j].Global, b.summaries[j].Global) {
			t.Fatalf("round %d global diverges between identical runs", j)
		}
	}
}
