// Package linttest is a hand-rolled analysistest-style harness for the
// helcfl lint suite: it loads a GOPATH-style corpus tree
// (testdata/<rule>/src/<import/path>/*.go), runs one analyzer over every
// package in it, and checks the produced diagnostics against
//
//	// want "regexp"
//
// expectation comments. A diagnostic must be matched by a want on its exact
// file and line, every want must be consumed, and suppressed findings
// (covered by a justified //helcfl:allow) must not be matched by any want —
// which is how the corpora also pin the escape hatch's behaviour. Findings
// from the framework rules ("allow", "policy") participate like any other,
// so a corpus can assert that a reason-less directive is itself reported.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"helcfl/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one parsed want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the corpus tree rooted at dir (which must contain src/) and
// checks analyzer's diagnostics — plus the framework's directive and policy
// findings — against the tree's want comments.
func Run(t *testing.T, dir string, analyzer *lint.Analyzer) {
	t.Helper()
	loader := lint.NewLoader()
	pkgs, err := loader.LoadTree(dir + "/src")
	if err != nil {
		t.Fatalf("load corpus %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("corpus %s is empty", dir)
	}
	findings := lint.Run(pkgs, []*lint.Analyzer{analyzer})

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range splitQuoted(m[1]) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, f := range findings {
		if f.Suppressed {
			continue // a justified allow must silence the diagnostic
		}
		if w := match(wants, f); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic %s", f)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func match(wants []*expectation, f lint.Finding) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

// splitQuoted extracts the double- or back-quoted segments of a want
// payload: `"a" "b"` → a, b.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			// Unquoted tail (trailing prose): stop.
			return out
		}
	}
	return out
}

// Sprint renders findings one per line for debugging corpus failures.
func Sprint(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
