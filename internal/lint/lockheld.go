package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld polices the two ways a mutex rots a concurrent runtime: holding
// it across a blocking operation (an HTTP round-trip, an fsync, a channel
// send/receive, a sleep — the obs register-while-scrape race fixed in PR 6
// was exactly this class), and failing to release it on some path. For every
// sync.Mutex/RWMutex Lock the analyzer proves an Unlock on all control-flow
// exits (a defer counts for every exit) and reports any blocking operation
// evaluated while the lock is held. Functions whose name ends in "Locked"
// follow the repo's convention of running entirely under a caller's lock, so
// their whole body is checked for blocking operations. The blocking set is
// the stdlib's (net/http round-trips, File.Sync, time.Sleep, WaitGroup.Wait,
// channel operations) plus the module's own policy.BlockingCalls.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "require mutexes to be released on all paths and never held across blocking operations",
	Run:  runLockHeld,
}

// stdlibBlocking maps qualified stdlib call names to why they block.
var stdlibBlocking = map[string]string{
	"time.Sleep":                      "sleeps",
	"sync.WaitGroup.Wait":             "waits for goroutines",
	"os.File.Sync":                    "fsyncs",
	"net/http.Get":                    "does an HTTP round-trip",
	"net/http.Post":                   "does an HTTP round-trip",
	"net/http.PostForm":               "does an HTTP round-trip",
	"net/http.Head":                   "does an HTTP round-trip",
	"net/http.Client.Do":              "does an HTTP round-trip",
	"net/http.Client.Get":             "does an HTTP round-trip",
	"net/http.Client.Post":            "does an HTTP round-trip",
	"net/http.Client.PostForm":        "does an HTTP round-trip",
	"net/http.Client.Head":            "does an HTTP round-trip",
	"net/http.Transport.RoundTrip":    "does an HTTP round-trip",
	"net/http.RoundTripper.RoundTrip": "does an HTTP round-trip",
}

func runLockHeld(p *Pass) {
	for _, f := range p.Files {
		seen := map[token.Pos]bool{} // dedupe blocking reports across nested locks
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil {
				return true
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				lockHeldBody(p, fd.Body, fd.Name.Name+" runs under the caller's lock", seen)
			}
			return true
		})
		for _, frame := range frames(f) {
			lockHeldFrame(p, frame, seen)
		}
	}
}

// lockSite is one mu.Lock()/mu.RLock() statement.
type lockSite struct {
	stmt   ast.Stmt
	recv   string // rendered receiver expression, e.g. "c.mu"
	unlock string // the matching release method name
	pos    token.Pos
}

func lockHeldFrame(p *Pass, body *ast.BlockStmt, seen map[token.Pos]bool) {
	var sites []lockSite
	inspectFrame(body, func(n ast.Node) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if site, ok := asLockCall(p, es); ok {
			sites = append(sites, site)
		}
	})
	for _, s := range sites {
		lock := s.recv + "." + strings.TrimSuffix(s.unlock, "Unlock") + "Lock()"
		held := lock + " is held"
		reported := false
		walkFlow(body, &flowClient{
			acquire: func(st ast.Stmt) bool { return st == s.stmt },
			release: func(st ast.Stmt) bool { return isUnlockStmt(p, st, s) },
			deferRelease: func(d *ast.DeferStmt) bool {
				return isUnlockCall(p, d.Call, s) || deferredClosureUnlocks(p, d, s)
			},
			onHeld: func(n ast.Node) { reportBlocking(p, n, held, seen) },
			onLeak: func(pos token.Pos, kind string) {
				if reported {
					return
				}
				reported = true
				p.Reportf(s.pos, "%s is not released on all paths (%s at line %d); unlock before every exit or defer the %s",
					lock, kind, p.Fset.Position(pos).Line, s.unlock)
			},
		})
	}
}

// lockHeldBody checks a body that is lock-held from entry to exit (the
// *Locked naming convention) for blocking operations only.
func lockHeldBody(p *Pass, body *ast.BlockStmt, held string, seen map[token.Pos]bool) {
	w := &flowWalker{c: &flowClient{
		acquire: func(ast.Stmt) bool { return false },
		release: func(ast.Stmt) bool { return false },
		onHeld:  func(n ast.Node) { reportBlocking(p, n, held, seen) },
		onLeak:  func(token.Pos, string) {},
	}}
	w.list(body.List, flowState{held: true})
}

// asLockCall matches `x.Lock()` / `x.RLock()` on a sync mutex.
func asLockCall(p *Pass, es *ast.ExprStmt) (lockSite, bool) {
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockSite{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockSite{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" {
		return lockSite{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockSite{}, false
	}
	unlock := "Unlock"
	if name == "RLock" {
		unlock = "RUnlock"
	}
	return lockSite{stmt: es, recv: types.ExprString(sel.X), unlock: unlock, pos: call.Pos()}, true
}

// isUnlockStmt matches the statement `recv.Unlock()` for s.
func isUnlockStmt(p *Pass, st ast.Stmt, s lockSite) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isUnlockCall(p, call, s)
}

// isUnlockCall matches the call `recv.Unlock()` for s.
func isUnlockCall(p *Pass, call *ast.CallExpr, s lockSite) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != s.unlock {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return types.ExprString(sel.X) == s.recv
}

// deferredClosureUnlocks matches `defer func() { ...; recv.Unlock(); ... }()`.
func deferredClosureUnlocks(p *Pass, d *ast.DeferStmt, s lockSite) bool {
	fl, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isUnlockCall(p, call, s) {
			found = true
		}
		return !found
	})
	return found
}

// reportBlocking scans the expressions of n (nested function literals
// excluded — they run in another frame) for operations that block, and
// reports each one found while a lock is held.
func reportBlocking(p *Pass, n ast.Node, held string, seen map[token.Pos]bool) {
	report := func(pos token.Pos, what, why string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		p.Reportf(pos, "%s %s while %s; do the blocking work outside the lock", what, why, held)
	}
	if sel, ok := n.(*ast.SelectStmt); ok {
		report(sel.Pos(), "select", "blocks on channel operations")
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(c.Arrow, "channel send", "blocks until received")
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				report(c.OpPos, "channel receive", "blocks until sent")
			}
		case *ast.CallExpr:
			name := calleeName(p, c)
			if name == "" {
				return true
			}
			if why, ok := stdlibBlocking[name]; ok {
				report(c.Pos(), displayName(name), why)
			} else if why, ok := BlockingCalls[name]; ok {
				report(c.Pos(), displayName(name), why)
			}
		}
		return true
	})
}

// calleeName resolves a call to its qualified name: "import/path.Func" for a
// package function, "import/path.Type.Method" for a method (pointer
// receivers dereferenced, so *T and T methods share a name).
func calleeName(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := p.Info.Selections[sel]; ok {
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return ""
		}
		recv := s.Recv()
		for {
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
				continue
			}
			break
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	if fn := pkgFunc(p, sel); fn != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return ""
}

// displayName shortens a qualified name to pkg.Type.Method for a message.
func displayName(q string) string {
	if i := strings.LastIndexByte(q, '/'); i >= 0 {
		return q[i+1:]
	}
	return q
}
