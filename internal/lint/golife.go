package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLife bans fire-and-forget goroutines in the concurrent runtime packages
// (policy.GoroutineScopedPackages). Every `go` statement there must show a
// visible lifecycle a reviewer can point at: a sync.WaitGroup the spawner
// joins (Done in the body), a channel the goroutine communicates on (send,
// receive, close, select, or ranging a channel — done-channels and ctx-bound
// loops included), or — for a named function — a context, channel, or
// WaitGroup passed in, so the join lives behind the call. A goroutine with
// none of these outlives its campaign silently; the internal/leaktest
// harness catches that at test time, this rule catches it at review time.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "require every go statement in runtime packages to have a visible join or lifecycle",
	Run:  runGoLife,
}

func runGoLife(p *Pass) {
	if !IsGoroutineScoped(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !goBodyHasLifecycle(p, fl.Body) {
					p.Reportf(g.Pos(), "fire-and-forget goroutine: the body joins no WaitGroup and communicates on no channel; give it a WaitGroup, done channel, or ctx-bound loop")
				}
				return true
			}
			if !goCallHasLifecycle(p, g.Call) {
				p.Reportf(g.Pos(), "fire-and-forget goroutine: the call receives no context, channel, or WaitGroup; give the callee a lifecycle the spawner can join")
			}
			return true
		})
	}
}

// goBodyHasLifecycle reports whether a goroutine body contains a visible
// join or communication point.
func goBodyHasLifecycle(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if name := calleeName(p, n); name == "sync.WaitGroup.Done" || name == "sync.WaitGroup.Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}

// goCallHasLifecycle reports whether a named-call goroutine receives a
// lifecycle through its arguments: a context.Context, a channel, or a
// sync.WaitGroup.
func goCallHasLifecycle(p *Pass, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		t := p.Info.Types[a].Type
		if t == nil {
			continue
		}
		if isLifecycleType(t) {
			return true
		}
	}
	return false
}

func isLifecycleType(t types.Type) bool {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "context" && name == "Context") || (path == "sync" && name == "WaitGroup")
}
