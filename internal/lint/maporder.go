package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range loops over maps whose bodies are sensitive to
// iteration order: appending to a slice that outlives the loop, writing
// output, or accumulating a float with a compound assignment (float
// addition is not associative, so even a "symmetric" sum diverges between
// runs). Order-independent bodies pass: indexed writes keyed by the loop
// variables, counting, deleting. The fix is to iterate a sorted key slice;
// ranging over sortedKeys(m) is a slice range and never flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "ban order-sensitive work inside map iteration on deterministic paths",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	if !IsMapOrderScoped(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, rs)
			return true
		})
	}
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			switch stmt.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range stmt.Rhs {
					if !isAppendCall(p, rhs) || i >= len(stmt.Lhs) {
						continue
					}
					if orderSensitiveWrite(p, stmt.Lhs[i], rs) {
						p.Reportf(stmt.Pos(), "append to a slice that outlives this map range: element order follows map iteration; range over sorted keys instead")
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := stmt.Lhs[0]
				if isFloat(p.Info.TypeOf(lhs)) && orderSensitiveWrite(p, lhs, rs) {
					p.Reportf(stmt.Pos(), "float accumulation inside a map range is order-dependent (FP addition is not associative); range over sorted keys instead")
				}
			}
		case *ast.CallExpr:
			if sel, ok := stmt.Fun.(*ast.SelectorExpr); ok {
				if fn := pkgFunc(p, sel); fn != nil && writesOutput(fn) {
					p.Reportf(stmt.Pos(), "%s.%s inside a map range emits output in map-iteration order; range over sorted keys instead", fn.Pkg().Name(), fn.Name())
				}
			}
		}
		return true
	})
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderSensitiveWrite reports whether a write through expr both survives
// the loop and depends on iteration order. Writes to loop-local variables
// do not survive; writes indexed by the loop's own key/value land in a
// per-key slot regardless of visit order.
func orderSensitiveWrite(p *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[e]
			if obj == nil {
				obj = p.Info.Defs[e]
			}
			if obj == nil || obj.Name() == "_" {
				return false
			}
			return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			if mentionsLoopVar(p, e.Index, rs) {
				return false
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		default:
			return true
		}
	}
}

// mentionsLoopVar reports whether expr references the range statement's key
// or value variable.
func mentionsLoopVar(p *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	vars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := v.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := p.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[p.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// writesOutput reports whether fn is a fmt print function or
// io.WriteString.
func writesOutput(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "io":
		return fn.Name() == "WriteString"
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
