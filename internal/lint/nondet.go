package lint

import (
	"go/ast"
	"go/types"
)

// Nondeterminism bans wall-clock reads and ambient randomness inside the
// deterministic packages (policy.go): time.Now/Since/Until, every
// package-level math/rand and math/rand/v2 function (they draw from the
// global, non-replayable source), and all of crypto/rand. Seeded generators
// — rand.New(rand.NewSource(seed)) with a seed injected through config —
// are the approved pattern; a rand.NewSource whose seed expression touches
// the time package is flagged directly in case the wall-clock read hides in
// a helper.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "ban wall clock and global randomness in replayable-from-seed packages",
	Run:  runNondeterminism,
}

// seededConstructors are the math/rand entry points that consume an
// explicit source or seed rather than the global one.
var seededConstructors = map[string]bool{
	// math/rand
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

func runNondeterminism(p *Pass) {
	if !IsDeterministic(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p, sel)
			if fn == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s", fn.Name(), p.Path)
				}
			case "math/rand", "math/rand/v2":
				if seededConstructors[fn.Name()] {
					break
				}
				p.Reportf(sel.Pos(), "global %s.%s is not replayable from a seed; inject a *rand.Rand instead", fn.Pkg().Path(), fn.Name())
			case "crypto/rand":
				p.Reportf(sel.Pos(), "crypto/rand.%s is nondeterministic by definition; deterministic package %s must use a seeded math/rand", fn.Name(), p.Path)
			}
			return true
		})
		// A seeded constructor whose seed expression itself reads the clock
		// defeats the injection pattern even if the time call is wrapped.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p, sel)
			if fn == nil || fn.Name() != "NewSource" {
				return true
			}
			if pp := fn.Pkg().Path(); pp != "math/rand" && pp != "math/rand/v2" {
				return true
			}
			for _, arg := range call.Args {
				if usesTime(p, arg) {
					p.Reportf(arg.Pos(), "rand.NewSource seeded from the time package; inject the seed through configuration")
				}
			}
			return true
		})
	}
}

// pkgFunc resolves sel to a package-level function (methods and non-func
// objects return nil).
func pkgFunc(p *Pass, sel *ast.SelectorExpr) *types.Func {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// usesTime reports whether expr references anything from package time.
func usesTime(p *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			found = true
		}
		return !found
	})
	return found
}
