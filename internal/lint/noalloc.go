package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces the allocation-freedom contract of hot-path kernels: a
// function whose doc comment carries a
//
//	//helcfl:noalloc
//
// marker promises to perform zero heap allocations per call in steady
// state — that is what keeps a full training step allocation-free (the
// testing.AllocsPerRun gates in tensor, nn, and fl pin the runtime truth).
// The analyzer is the syntactic early-warning for those gates: inside a
// marked function it flags the constructs that heap-allocate or are the
// classic regressions —
//
//   - the make, new, and append builtins,
//   - slice and map composite literals, and &T{…} (address of a composite
//     literal escapes),
//   - function literals: a closure passed outward captures its environment
//     on the heap even if the callee runs it inline — the exact regression
//     that once cost the serial matmul path one allocation per call (the
//     WorkersFor-branch idiom exists to avoid it),
//   - go statements (every spawn allocates a stack),
//   - string concatenation and string↔[]byte/[]rune conversions.
//
// The check is deliberately syntactic (no escape analysis): it
// under-approximates — interface boxing at ordinary call sites passes — and
// over-approximates — a non-escaping &T{…} is still flagged. False
// positives carry a justified //helcfl:allow(noalloc) like any other rule;
// the alloc-gate tests remain the ground truth.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "ban allocating constructs inside functions marked //helcfl:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocMarker(fd.Doc) {
				continue
			}
			checkNoAllocBody(p, fd)
		}
	}
}

// hasNoAllocMarker reports whether the doc comment contains a bare
// //helcfl:noalloc line.
func hasNoAllocMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "helcfl:noalloc" {
			return true
		}
	}
	return false
}

func checkNoAllocBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but calls %s", name, b.Name())
					}
				}
			}
			if conv := allocatingConversion(p, n); conv != "" {
				p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but performs an allocating conversion %s", name, conv)
			}
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but builds a slice literal", name)
			case *types.Map:
				p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but builds a map literal", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but takes the address of a composite literal", name)
				}
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but contains a function literal (captured variables escape)", name)
			return false // one finding per closure; skip its body
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "%s is marked //helcfl:noalloc but spawns a goroutine", name)
			return false // the spawn is the finding; don't re-flag its closure
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p.Info.TypeOf(n.X)) {
				p.Reportf(n.OpPos, "%s is marked //helcfl:noalloc but concatenates strings", name)
			}
		}
		return true
	})
}

// allocatingConversion reports a string↔[]byte/[]rune conversion in call
// form, returning a description or "".
func allocatingConversion(p *Pass, call *ast.CallExpr) string {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return ""
	}
	dst := tv.Type.Underlying()
	src := p.Info.TypeOf(call.Args[0])
	if src == nil {
		return ""
	}
	srcU := src.Underlying()
	if isString(srcU) {
		if sl, ok := dst.(*types.Slice); ok && isByteOrRune(sl.Elem()) {
			return "(string → slice)"
		}
	}
	if isString(dst) {
		if sl, ok := srcU.(*types.Slice); ok && isByteOrRune(sl.Elem()) {
			return "(slice → string)"
		}
	}
	return ""
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
		b.Kind() == types.Rune || b.Kind() == types.Int32
}
