package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd protects the helcfl-inspect trace phase-coverage gate: a span that
// is Started but not Ended on some path (early return, panic, ctx-cancel
// branch) leaves a hole in the recorded phase set, and the CI gate fails a
// whole campaign over it. The analyzer tracks every local variable assigned
// from a call returning a span type (internal/obs/span.Span and the
// internal/obs.Span timer) and proves that each one reaches End() on all
// control-flow exits — a defer counts for every exit, a discarded span
// result can never be Ended and is reported outright. Spans that escape the
// frame (stored in a struct field, captured by a closure, passed or
// returned) are the owner's responsibility and are skipped.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "require every Started span to reach End() on all control-flow paths",
	Run:  runSpanEnd,
}

// spanPackages are the package paths whose named type Span is tracked.
var spanPackages = map[string]bool{
	"helcfl/internal/obs/span": true,
	"helcfl/internal/obs":      true,
}

func runSpanEnd(p *Pass) {
	for _, f := range p.Files {
		for _, frame := range frames(f) {
			spanEndFrame(p, frame)
		}
	}
}

// frames returns the body of every function declaration and function
// literal in f; each is analyzed as its own frame.
func frames(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// spanStart is one statement that binds a span-typed call result to a local.
type spanStart struct {
	stmt ast.Stmt     // the assignment or declaration statement
	obj  types.Object // the span variable
	pos  token.Pos    // where to report
}

func spanEndFrame(p *Pass, body *ast.BlockStmt) {
	starts := collectSpanStarts(p, body)
	for _, s := range starts {
		if spanEscapes(p, body, s.obj) {
			continue
		}
		if hasDeferredEnd(p, body, s.obj) {
			continue
		}
		reported := false
		walkFlow(body, &flowClient{
			acquire: func(st ast.Stmt) bool { return st == s.stmt },
			release: func(st ast.Stmt) bool { return isEndCall(p, st, s.obj) },
			onLeak: func(pos token.Pos, kind string) {
				if reported {
					return
				}
				reported = true
				p.Reportf(s.pos, "span %s does not reach End() on all paths (%s at line %d); end it before every exit or defer the End",
					s.obj.Name(), kind, p.Fset.Position(pos).Line)
			},
		})
	}
}

// collectSpanStarts finds every statement in body (nested function literals
// excluded — they are their own frames) that binds a span-typed call result,
// reporting outright the results that are discarded and can never be Ended.
func collectSpanStarts(p *Pass, body *ast.BlockStmt) []spanStart {
	var out []spanStart
	inspectFrame(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				t := resultType(p, call, i, len(st.Lhs))
				if t == nil || !isSpanType(t) {
					continue
				}
				if id.Name == "_" {
					p.Reportf(id.Pos(), "span result discarded; it can never be Ended — bind it and End it, or do not start it")
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil {
					out = append(out, spanStart{stmt: st, obj: obj, pos: id.Pos()})
				}
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if t := p.Info.Types[call].Type; t != nil && tupleHasSpan(t) {
				p.Reportf(call.Pos(), "span result discarded; it can never be Ended — bind it and End it, or do not start it")
			}
		}
	})
	return out
}

// inspectFrame walks body like ast.Inspect but does not descend into nested
// function literals.
func inspectFrame(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// resultType returns the type bound to the i-th of n left-hand sides of an
// assignment from call.
func resultType(p *Pass, call *ast.CallExpr, i, n int) types.Type {
	t := p.Info.Types[call].Type
	if t == nil {
		return nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		if i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}
	if n == 1 && i == 0 {
		return t
	}
	return nil
}

// isSpanType reports whether t is (a pointer to) a tracked span type.
func isSpanType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Span" && spanPackages[named.Obj().Pkg().Path()]
}

// tupleHasSpan reports whether t is a span type or a tuple containing one.
func tupleHasSpan(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isSpanType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isSpanType(t)
}

// spanEscapes reports whether obj is used in body in a way that moves
// responsibility for End() elsewhere: captured by a closure, passed as an
// argument, returned, assigned onward, sent on a channel, or having its
// address taken. Method calls on the span itself and reassignments of the
// variable are the only benign uses.
func spanEscapes(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	benign := map[*ast.Ident]bool{}
	var funcLits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			funcLits = append(funcLits, n)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					benign[id] = true // receiver of a method call
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					benign[id] = true // assignment target
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				benign[name] = true // declaration
			}
		}
		return true
	})
	inFuncLit := func(pos token.Pos) bool {
		for _, fl := range funcLits {
			if fl.Pos() <= pos && pos < fl.End() {
				return true
			}
		}
		return false
	}
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || escapes {
			return !escapes
		}
		if p.Info.Uses[id] != obj && p.Info.Defs[id] != obj {
			return true
		}
		if inFuncLit(id.Pos()) || !benign[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

// hasDeferredEnd reports whether body contains `defer obj.End()`.
func hasDeferredEnd(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	inspectFrame(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return
		}
		if isEndCallExpr(p, d.Call, obj) {
			found = true
		}
	})
	return found
}

// isEndCall reports whether st is the statement `obj.End()`.
func isEndCall(p *Pass, st ast.Stmt, obj types.Object) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isEndCallExpr(p, call, obj)
}

// isEndCallExpr reports whether call is `obj.End()`.
func isEndCallExpr(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}
