package lint

import (
	"go/ast"
	"go/token"
)

// flow.go is the shared release-on-all-paths walker behind the spanend and
// lockheld analyzers. Both rules reduce to the same question: a resource is
// acquired at one statement (a span Started, a mutex Locked) and must be
// released on every control-flow path from there to function exit — early
// returns, panics, and falling off the end included. The walker is an
// abstract interpreter over statement lists, not a real CFG: branches merge
// conservatively (held on either arm counts as held), break/continue/goto
// give up on that path rather than guess, and closures are never entered
// (a resource that escapes into a closure is the client's job to exclude
// before walking).

// flowState tracks one resource along one path.
type flowState struct {
	// held: the resource has been acquired and not released on this path.
	held bool
	// leakable: an exit while held should be reported. A deferred release
	// clears it (the resource stays held to the end, but every exit runs
	// the release).
	leakable bool
}

// merge joins the states of two branches that both fall through.
func (s flowState) merge(o flowState) flowState {
	return flowState{held: s.held || o.held, leakable: s.leakable || o.leakable}
}

// flowClient parameterizes walkFlow for one tracked resource.
type flowClient struct {
	// acquire reports whether s is the acquisition site.
	acquire func(s ast.Stmt) bool
	// release reports whether s directly releases the resource.
	release func(s ast.Stmt) bool
	// deferRelease reports whether d schedules the release on all exits.
	deferRelease func(d *ast.DeferStmt) bool
	// onHeld, if non-nil, sees every node evaluated while the resource is
	// held: statements, branch conditions, and return results. Clients use
	// it to flag operations that must not run under the resource. Nodes
	// inside nested function literals are never passed.
	onHeld func(n ast.Node)
	// onLeak is called for each exit reached while the resource is held
	// and leakable: pos locates the exit, kind names it ("return",
	// "panic", "function end", "loop end").
	onLeak func(pos token.Pos, kind string)
}

// walkFlow runs the client's resource through body.
func walkFlow(body *ast.BlockStmt, c *flowClient) {
	w := &flowWalker{c: c}
	out, term := w.list(body.List, flowState{})
	if !term && out.held && out.leakable {
		c.onLeak(body.Rbrace, "function end")
	}
}

type flowWalker struct {
	c *flowClient
}

// list walks stmts with entry state in. It returns the state at the end of
// the list and whether every path through it terminated (returned, panicked,
// or branched away) before reaching the end.
func (w *flowWalker) list(stmts []ast.Stmt, in flowState) (flowState, bool) {
	st := in
	for _, s := range stmts {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// held passes n to the client's onHeld hook if the resource is held here.
func (w *flowWalker) held(st flowState, n ast.Node) {
	if st.held && w.c.onHeld != nil && n != nil {
		w.c.onHeld(n)
	}
}

// leak reports an exit at pos of the given kind if one is pending.
func (w *flowWalker) leak(st flowState, pos token.Pos, kind string) {
	if st.held && st.leakable {
		w.c.onLeak(pos, kind)
	}
}

// stmt interprets one statement. The returned bool reports termination: no
// path through s falls through to the next statement.
func (w *flowWalker) stmt(s ast.Stmt, st flowState) (flowState, bool) {
	if s == nil {
		return st, false
	}
	if w.c.acquire(s) {
		return flowState{held: true, leakable: true}, false
	}
	if w.c.release(s) {
		return flowState{}, false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.list(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		st, term := w.stmt(s.Init, st)
		if term {
			return st, true
		}
		w.held(st, s.Cond)
		thenSt, thenTerm := w.list(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.merge(elseSt), false
		}
	case *ast.ForStmt:
		st, term := w.stmt(s.Init, st)
		if term {
			return st, true
		}
		w.held(st, s.Cond)
		return w.loopBody(s.Body, st, s.Post)
	case *ast.RangeStmt:
		w.held(st, s.X)
		return w.loopBody(s.Body, st, nil)
	case *ast.SwitchStmt:
		st, term := w.stmt(s.Init, st)
		if term {
			return st, true
		}
		w.held(st, s.Tag)
		return w.clauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		st, term := w.stmt(s.Init, st)
		if term {
			return st, true
		}
		return w.clauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.SelectStmt:
		// The select itself is the blocking point; its per-case channel
		// operations are not reported separately.
		w.held(st, s)
		return w.selectClauses(s.Body, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.held(st, r)
		}
		w.leak(st, s.Pos(), "return")
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto: give up on this path rather than model
		// label targets — conservative non-reporting.
		return st, true
	case *ast.DeferStmt:
		if w.c.deferRelease != nil && w.c.deferRelease(s) {
			st.leakable = false
		}
		return st, false
	case *ast.ExprStmt:
		if isTerminalCall(s.X) {
			if isPanicCall(s.X) {
				w.held(st, s)
				w.leak(st, s.Pos(), "panic")
			}
			return st, true
		}
		w.held(st, s)
		return st, false
	case *ast.GoStmt:
		// The spawned body runs in another frame; only the call's argument
		// expressions are evaluated here.
		for _, a := range s.Call.Args {
			w.held(st, a)
		}
		return st, false
	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, EmptyStmt, …
		w.held(st, s)
		return st, false
	}
}

// loopBody walks a for/range body. The body may run zero times, so the
// loop's exit state merges the entry state with the body's; a resource
// acquired inside the body must be released by the end of the iteration or
// it leaks when the next one starts.
func (w *flowWalker) loopBody(body *ast.BlockStmt, in flowState, post ast.Stmt) (flowState, bool) {
	out, term := w.list(body.List, in)
	if !term {
		if post != nil {
			out, _ = w.stmt(post, out)
		}
		if !in.held && out.held && out.leakable {
			w.c.onLeak(body.Rbrace, "loop end")
			out.leakable = false
		}
	}
	return in.merge(out), false
}

// clauses walks the case bodies of a switch. When mayFallThrough is set (no
// default clause) the entry state joins the merge.
func (w *flowWalker) clauses(body *ast.BlockStmt, in flowState, mayFallThrough bool) (flowState, bool) {
	var out flowState
	merged := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.held(in, e)
		}
		st, term := w.list(cc.Body, in)
		if term {
			continue
		}
		if merged {
			out = out.merge(st)
		} else {
			out, merged = st, true
		}
	}
	if mayFallThrough {
		if merged {
			out = out.merge(in)
		} else {
			out, merged = in, true
		}
	}
	if !merged {
		// Every clause terminated and a default guarantees one runs.
		return in, len(body.List) > 0
	}
	return out, false
}

// selectClauses walks the comm clauses of a select. Exactly one case always
// runs (an empty select blocks forever and is treated as terminating); the
// per-case channel operations belong to the select already reported by the
// caller, so they are not interpreted separately.
func (w *flowWalker) selectClauses(body *ast.BlockStmt, in flowState) (flowState, bool) {
	var out flowState
	merged := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		st, term := w.list(cc.Body, in)
		if term {
			continue
		}
		if merged {
			out = out.merge(st)
		} else {
			out, merged = st, true
		}
	}
	if !merged {
		return in, true
	}
	return out, false
}

// switchHasDefault reports whether a switch body has a default clause.
func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// isTerminalCall reports whether e is a call that never returns: panic,
// os.Exit, or a log.Fatal variant.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name == "panic"
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && sel.Sel.Name == "Exit":
				return true
			case x.Name == "log" && (sel.Sel.Name == "Fatal" || sel.Sel.Name == "Fatalf" || sel.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}
