package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The one escape hatch every analyzer honors:
//
//	//helcfl:allow(rule) reason
//
// placed either at the end of the offending line or on its own line
// directly above it. The rule must name an analyzer and the reason must be
// non-empty — an allow that names no rule, an unknown rule, or carries no
// justification is itself a finding (rule "allow"), so suppressions stay
// auditable.

// directive is one parsed //helcfl:allow comment.
type directive struct {
	rule   string
	reason string
	pos    token.Pos
	line   int
}

var allowRE = regexp.MustCompile(`^helcfl:allow\(([^)\s]*)\)\s*(.*)$`)

// collectDirectives parses every //helcfl:allow comment in the pass's
// files. It returns the well-formed directives keyed by filename and line,
// and a finding for each malformed one.
func collectDirectives(fset *token.FileSet, files []*ast.File, rules map[string]bool) (map[string]map[int]directive, []Finding) {
	byFile := map[string]map[int]directive{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "helcfl:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(text)
				switch {
				case m == nil:
					bad = append(bad, Finding{
						Rule: "allow", Pos: pos,
						Message: "malformed allow directive: want //helcfl:allow(rule) reason",
					})
					continue
				case !rules[m[1]]:
					bad = append(bad, Finding{
						Rule: "allow", Pos: pos,
						Message: "allow directive names unknown rule " + quote(m[1]),
					})
					continue
				case strings.TrimSpace(m[2]) == "":
					bad = append(bad, Finding{
						Rule: "allow", Pos: pos,
						Message: "allow directive for " + quote(m[1]) + " is missing a reason",
					})
					continue
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = map[int]directive{}
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = directive{rule: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos(), line: pos.Line}
			}
		}
	}
	return byFile, bad
}

// suppression looks up a directive covering a finding of rule at pos: a
// directive on the same line (trailing comment) or on the line directly
// above (its own comment line).
func suppression(dirs map[string]map[int]directive, rule string, pos token.Position) (directive, bool) {
	lines := dirs[pos.Filename]
	if lines == nil {
		return directive{}, false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.rule == rule {
			return d, true
		}
	}
	return directive{}, false
}

// quote wraps a name in double quotes for a message.
func quote(s string) string { return `"` + s + `"` }
