package lint

import (
	"go/ast"
	"go/types"
)

// Durability enforces the fsync discipline in the persistence packages
// (policy.DurabilityPackages), where "the write returned nil" must mean
// "the bytes survive a crash":
//
//   - a function that calls os.Rename must also fsync in that function
//     (write temp → Sync → Close → Rename → sync dir, as
//     checkpoint.WriteFile does);
//   - a function that writes an *os.File and closes it must Sync before
//     relying on Close;
//   - os.WriteFile is banned outright (it never fsyncs);
//   - a Close/Sync/Flush whose error result is silently discarded — a bare
//     call statement or a bare defer — is flagged. An explicit `_ = f.Close()`
//     is visible intent and passes.
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "enforce fsync-before-rename and checked Close/Sync/Flush in persistence code",
	Run:  runDurability,
}

func runDurability(p *Pass) {
	if !IsDurability(p.Path) {
		return
	}
	for _, f := range p.Files {
		// Discarded error results, anywhere in the file (including
		// closures): a dropped Close error on a written file is lost data.
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					reportDiscarded(p, call, "")
				}
			case *ast.DeferStmt:
				reportDiscarded(p, stmt.Call, "defer ")
			}
			return true
		})
		// Per-function sequencing rules.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSyncDiscipline(p, fd)
		}
	}
}

// reportDiscarded flags call when it is a Close/Sync/Flush returning an
// error that the surrounding statement drops.
func reportDiscarded(p *Pass, call *ast.CallExpr, prefix string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Sync" && name != "Flush" {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return
	}
	if named, ok := sig.Results().At(0).Type().(*types.Named); !ok || named.Obj().Name() != "error" {
		return
	}
	p.Reportf(call.Pos(), "%s%s.%s() discards its error; in persistence code a dropped %s error is lost data — handle it or assign to _ explicitly",
		prefix, types.ExprString(sel.X), name, name)
}

// checkSyncDiscipline applies the per-function fsync sequencing rules.
func checkSyncDiscipline(p *Pass, fd *ast.FuncDecl) {
	var (
		renamePos  ast.Expr
		writeFile  ast.Expr
		osWritePos ast.Expr
		hasSync    bool
		hasClose   bool
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn := pkgFunc(p, sel); fn != nil && fn.Pkg().Path() == "os" {
			switch fn.Name() {
			case "Rename":
				renamePos = call.Fun
			case "WriteFile":
				osWritePos = call.Fun
			}
			return true
		}
		// Method calls: classify by receiver type and name.
		switch sel.Sel.Name {
		case "Sync":
			hasSync = true
		case "Close":
			if isOSFile(p.Info.TypeOf(sel.X)) {
				hasClose = true
			}
		case "Write", "WriteString", "WriteAt":
			if isOSFile(p.Info.TypeOf(sel.X)) {
				writeFile = call.Fun
			}
		}
		return true
	})
	if osWritePos != nil {
		p.Reportf(osWritePos.Pos(), "os.WriteFile never fsyncs; use checkpoint.WriteFile (write temp, Sync, Close, Rename, sync dir) for durable writes")
	}
	if renamePos != nil && !hasSync {
		p.Reportf(renamePos.Pos(), "os.Rename without an fsync in %s: the renamed bytes may not be durable when this returns", fd.Name.Name)
	}
	if writeFile != nil && hasClose && !hasSync {
		p.Reportf(writeFile.Pos(), "%s writes and closes an *os.File without Sync: a crash after return can lose the acknowledged bytes", fd.Name.Name)
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
