package lint

import "sort"

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, MapOrder, FloatCompare, Durability, CtxFlow, NoAlloc,
		SpanEnd, LockHeld, GoLife, WireCodec,
	}
}

// RuleNames returns the set of rule names an //helcfl:allow directive may
// reference.
func RuleNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// Run applies the analyzers to every package and resolves //helcfl:allow
// directives, returning all findings (suppressed ones included, marked)
// sorted by position. Beyond the analyzers themselves it reports:
//
//   - rule "allow": a malformed directive — no parseable rule, an unknown
//     rule, or a missing reason;
//   - rule "policy": a module package absent from the policy table
//     (policy.go), so new packages must be classified explicitly.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return run(pkgs, analyzers, false)
}

// RunWithStale is Run plus the stale-suppression audit: every well-formed
// //helcfl:allow directive that suppressed no finding becomes a rule "stale"
// finding, so a suppression outliving the code it excused is removed rather
// than rotting into a blanket exemption. Stale findings cannot themselves be
// suppressed.
func RunWithStale(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return run(pkgs, analyzers, true)
}

func run(pkgs []*Package, analyzers []*Analyzer, stale bool) []Finding {
	rules := RuleNames(analyzers)
	var out []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg.Fset, pkg.Files, rules)
		out = append(out, bad...)
		if !Classified(pkg.Path) {
			out = append(out, Finding{
				Rule:    "policy",
				Pos:     pkg.Fset.Position(pkg.Files[0].Package),
				Message: "package " + pkg.Path + " is not classified in internal/lint/policy.go; add it as deterministic or runtime",
			})
		}
		consumed := map[string]map[int]bool{}
		for _, a := range analyzers {
			pass := &Pass{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
			a.Run(pass)
			for _, d := range pass.diags {
				f := Finding{Rule: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message}
				if dir, ok := suppression(dirs, a.Name, f.Pos); ok {
					f.Suppressed = true
					f.Reason = dir.reason
					if consumed[f.Pos.Filename] == nil {
						consumed[f.Pos.Filename] = map[int]bool{}
					}
					consumed[f.Pos.Filename][dir.line] = true
				}
				out = append(out, f)
			}
		}
		if stale {
			for file, lines := range dirs {
				for line, d := range lines {
					if consumed[file][line] {
						continue
					}
					out = append(out, Finding{
						Rule:    "stale",
						Pos:     pkg.Fset.Position(d.pos),
						Message: "allow directive for " + quote(d.rule) + " suppresses nothing; the rule no longer fires here — remove the directive",
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Unsuppressed filters findings to those no justified allow directive
// covers — the set that fails the build.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
