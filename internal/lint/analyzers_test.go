package lint_test

import (
	"testing"

	"helcfl/internal/lint"
	"helcfl/internal/lint/linttest"
)

// Each analyzer is pinned by a GOPATH-style corpus under testdata/<rule>:
// the corpus packages mirror real module import paths, so they are
// classified by the same policy table as the live tree, and every expected
// diagnostic is a // want "regexp" comment on the offending line. The
// corpora also cover the negative space — approved idioms, out-of-scope
// packages, and justified //helcfl:allow suppressions must produce nothing.

func TestNondeterminismCorpus(t *testing.T) {
	linttest.Run(t, "testdata/nondeterminism", lint.Nondeterminism)
}

func TestMapOrderCorpus(t *testing.T) {
	linttest.Run(t, "testdata/maporder", lint.MapOrder)
}

func TestFloatCompareCorpus(t *testing.T) {
	linttest.Run(t, "testdata/floatcompare", lint.FloatCompare)
}

func TestDurabilityCorpus(t *testing.T) {
	linttest.Run(t, "testdata/durability", lint.Durability)
}

func TestCtxFlowCorpus(t *testing.T) {
	linttest.Run(t, "testdata/ctxflow", lint.CtxFlow)
}

func TestNoAllocCorpus(t *testing.T) {
	linttest.Run(t, "testdata/noalloc", lint.NoAlloc)
}

func TestSpanEndCorpus(t *testing.T) {
	linttest.Run(t, "testdata/spanend", lint.SpanEnd)
}

func TestLockHeldCorpus(t *testing.T) {
	linttest.Run(t, "testdata/lockheld", lint.LockHeld)
}

func TestGoLifeCorpus(t *testing.T) {
	linttest.Run(t, "testdata/golife", lint.GoLife)
}

func TestWireCodecCorpus(t *testing.T) {
	linttest.Run(t, "testdata/wirecodec", lint.WireCodec)
}
