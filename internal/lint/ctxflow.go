package lint

import (
	"go/ast"
	"go/token"
)

// CtxFlow keeps the deployment layer cancellable: every HTTP request must
// carry a caller's context (http.NewRequestWithContext, never
// http.NewRequest or the http.Get/Post/PostForm/Head conveniences), and
// waits must race a context — time.Sleep is banned, and time.After is legal
// only inside a select that also receives from a Done() channel. A
// context-free request or sleep survives shutdown and deadlines, which is
// exactly how graceful drain and per-request timeouts rot.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require context propagation for HTTP requests and waits in deploy code",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !IsContextScoped(p.Path) {
		return
	}
	for _, f := range p.Files {
		guarded := ctxGuardedSelects(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p, sel)
			if fn == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "net/http":
				switch fn.Name() {
				case "Get", "Post", "PostForm", "Head":
					p.Reportf(sel.Pos(), "http.%s has no context; build the request with http.NewRequestWithContext", fn.Name())
				case "NewRequest":
					p.Reportf(sel.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext")
				}
			case "time":
				switch fn.Name() {
				case "Sleep":
					p.Reportf(sel.Pos(), "time.Sleep cannot be cancelled; select on a timer against ctx.Done()")
				case "After":
					if !insideSpan(guarded, sel.Pos()) {
						p.Reportf(sel.Pos(), "time.After outside a select that also receives ctx.Done(); the wait would survive cancellation")
					}
				}
			}
			return true
		})
	}
}

// ctxGuardedSelects returns the source spans of every select statement that
// has a case receiving from a Done() channel.
func ctxGuardedSelects(f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			if commReceivesDone(comm.Comm) {
				spans = append(spans, [2]token.Pos{sel.Pos(), sel.End()})
				break
			}
		}
		return true
	})
	return spans
}

// commReceivesDone reports whether stmt receives from a channel expression
// containing a .Done() call (ctx.Done() and equivalents).
func commReceivesDone(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(call.Args) == 0 {
			found = true
		}
		return !found
	})
	return found
}
