package lint_test

import (
	"strings"
	"testing"

	"helcfl/internal/lint"
)

// TestAllowDirectiveAudit pins the escape hatch's own rules on the
// testdata/allow corpus: a directive missing its reason, naming an unknown
// rule, or failing to parse is itself a finding (rule "allow"), and such a
// directive does NOT suppress the diagnostic it sits on. Only the
// well-formed directive in the corpus suppresses anything.
func TestAllowDirectiveAudit(t *testing.T) {
	pkgs, err := lint.NewLoader().LoadTree("testdata/allow/src")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	findings := lint.Run(pkgs, lint.Analyzers())

	type expect struct {
		rule       string
		substr     string
		suppressed bool
	}
	expected := []expect{
		{"allow", `allow directive for "nondeterminism" is missing a reason`, false},
		{"allow", `allow directive names unknown rule "clockness"`, false},
		{"allow", "malformed allow directive", false},
		// The diagnostics under the broken directives stay live...
		{"nondeterminism", "time.Now reads the wall clock", false},
		{"nondeterminism", "time.Now reads the wall clock", false},
		// ...and only the justified directive suppresses its diagnostic.
		{"nondeterminism", "time.Now reads the wall clock", true},
	}

	if got, want := len(findings), len(expected); got != want {
		t.Fatalf("got %d findings, want %d:\n%s", got, want, sprint(findings))
	}
	for _, e := range expected {
		if !consume(findings, e.rule, e.substr, e.suppressed) {
			t.Errorf("no finding with rule=%s suppressed=%v matching %q:\n%s",
				e.rule, e.suppressed, e.substr, sprint(findings))
		}
		findings = remove(findings, e.rule, e.substr, e.suppressed)
	}

	suppressed := 0
	for _, f := range lint.Run(pkgs, lint.Analyzers()) {
		if f.Suppressed {
			suppressed++
			if want := "corpus fixture: justified suppression for contrast"; f.Reason != want {
				t.Errorf("suppressed finding carries reason %q, want %q", f.Reason, want)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed findings, want exactly 1", suppressed)
	}
}

func consume(fs []lint.Finding, rule, substr string, suppressed bool) bool {
	for _, f := range fs {
		if f.Rule == rule && f.Suppressed == suppressed && strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

func remove(fs []lint.Finding, rule, substr string, suppressed bool) []lint.Finding {
	for i, f := range fs {
		if f.Rule == rule && f.Suppressed == suppressed && strings.Contains(f.Message, substr) {
			return append(append([]lint.Finding{}, fs[:i]...), fs[i+1:]...)
		}
	}
	return fs
}

func sprint(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
