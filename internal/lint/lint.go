// Package lint is helcfl's in-tree static-analysis suite. It mechanically
// enforces the invariants the repo's headline guarantees rest on — the
// bit-identical sim↔deploy conformance and the split-at-any-round resume —
// which would otherwise only hold by convention:
//
//   - no wall clock or global math/rand on a deterministic path
//     (nondeterminism),
//   - no unordered map iteration feeding order-sensitive work (maporder),
//   - no exact float equality outside approved tolerance helpers
//     (floatcompare),
//   - fsync-before-rename discipline and no discarded Close/Sync/Flush
//     errors in the persistence layer (durability),
//   - no context-free HTTP requests or sleeps in the deployment layer
//     (ctxflow).
//
// The framework is written purely against the standard library (go/ast,
// go/parser, go/token, go/types) — no golang.org/x/tools dependency — with
// its own loader (load.go) and an analysistest-style corpus harness
// (linttest). Findings are suppressed one at a time with a justified
//
//	//helcfl:allow(rule) reason
//
// directive; an allow without a reason is itself a finding. The package
// policy (policy.go) records which packages are on the deterministic path,
// and every package in the module must be classified there explicitly.
//
// See docs/STATIC_ANALYSIS.md for the rule catalogue and a recipe for
// adding a new analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named rule: a function that inspects a type-checked
// package and reports diagnostics through its Pass.
type Analyzer struct {
	// Name identifies the rule; it is what an //helcfl:allow(name)
	// directive references.
	Name string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc string
	// Run inspects one package.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Path is the package's import path (e.g. "helcfl/internal/fl").
	Path string
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's resolution results for Files.
	Info *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw analyzer finding, before directive processing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one fully resolved result: a diagnostic tagged with its rule
// and position, and — when an //helcfl:allow directive covers it — the
// justification that suppressed it.
type Finding struct {
	// Rule is the analyzer name ("nondeterminism", …) or one of the
	// framework rules: "allow" (malformed directive) and "policy"
	// (unclassified package).
	Rule string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
	// Suppressed reports that a justified //helcfl:allow directive covers
	// this finding; Reason carries its justification.
	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", f.Reason)
	}
	return s
}
