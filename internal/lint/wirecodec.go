package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireCodec keeps fleet mode total over the experiments registry: every
// concrete type a grid.Cell's Run function can return crosses the
// coordinator/worker wire through experiments.Encode/DecodeCellResult, which
// is gob — and gob decodes only registered types with gob-safe fields. The
// analyzer collects the concrete result types of every `Run:` function
// literal inside a grid.Cell composite literal, requires a matching
// gob.Register call in the package (pointer-ness must match exactly), and
// audits the fields of every such type: an unexported field is silently
// dropped by gob (a wrong-answer bug, not an error), and func or chan fields
// fail at encode time. Types that implement gob.GobEncoder own their wire
// format and are exempt from the field audit. A Run that returns an
// interface or is not a visible function literal defeats the exhaustiveness
// proof and is reported as such.
var WireCodec = &Analyzer{
	Name: "wirecodec",
	Doc:  "require every registry cell result type to be gob-registered with gob-safe fields",
	Run:  runWireCodec,
}

func runWireCodec(p *Pass) {
	if !IsWireCodecScoped(p.Path) {
		return
	}
	registered := map[string]token.Pos{} // canonical type string -> gob.Register site
	required := map[string]token.Pos{}   // canonical type string -> first Run return site
	reqTypes := map[string]types.Type{}
	regTypes := map[string]types.Type{}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if fn := pkgFunc(p, sel); fn != nil && fn.Pkg().Path() == "encoding/gob" && fn.Name() == "Register" && len(n.Args) == 1 {
						if t := p.Info.Types[n.Args[0]].Type; t != nil {
							key := types.TypeString(t, nil)
							if _, ok := registered[key]; !ok {
								registered[key] = n.Pos()
								regTypes[key] = t
							}
						}
					}
				}
			case *ast.CompositeLit:
				if isGridCell(p, n) {
					collectCellResults(p, n, required, reqTypes)
				}
			}
			return true
		})
	}

	for key, pos := range required {
		if _, ok := registered[key]; !ok {
			p.Reportf(pos, "cell result type %s has no gob.Register in the wire codec; fleet workers could not ship it (experiments.EncodeCellResult)", relType(p, reqTypes[key]))
		}
	}
	// Audit the fields of everything that crosses the wire — required and
	// registered alike, so a pre-registered type cannot rot either.
	audited := map[string]bool{}
	for key, t := range regTypes {
		auditGobFields(p, t, registered[key], audited)
	}
	for key, t := range reqTypes {
		if pos, ok := registered[key]; ok {
			auditGobFields(p, t, pos, audited)
		} else {
			auditGobFields(p, t, required[key], audited)
		}
	}
}

// isGridCell reports whether cl is a composite literal of grid.Cell.
func isGridCell(p *Pass, cl *ast.CompositeLit) bool {
	t := p.Info.Types[cl].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Cell" && named.Obj().Pkg().Path() == "helcfl/internal/grid"
}

// collectCellResults records the concrete type of every result the cell's
// Run function literal can return.
func collectCellResults(p *Pass, cl *ast.CompositeLit, required map[string]token.Pos, reqTypes map[string]types.Type) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Run" {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			p.Reportf(kv.Value.Pos(), "cell Run is not a function literal; wirecodec cannot prove its result type is registered — inline the function")
			continue
		}
		for _, ret := range funcLitReturns(fl) {
			t := cellResultType(p, ret)
			if t == nil {
				continue
			}
			if isNilExpr(p, ret.Results[0]) {
				continue
			}
			if types.IsInterface(t) {
				p.Reportf(ret.Pos(), "cell Run returns an interface-typed result; return a concrete type so wirecodec can check its registration")
				continue
			}
			key := types.TypeString(t, nil)
			if _, ok := required[key]; !ok {
				required[key] = ret.Pos()
				reqTypes[key] = t
			}
		}
	}
}

// funcLitReturns returns the return statements belonging to fl itself, not
// to function literals nested inside it.
func funcLitReturns(fl *ast.FuncLit) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// cellResultType resolves the type of the first (result) value of ret: the
// first expression's type, or the first element when a single call forwards
// the whole (any, error) tuple.
func cellResultType(p *Pass, ret *ast.ReturnStmt) types.Type {
	if len(ret.Results) == 0 {
		return nil
	}
	t := p.Info.Types[ret.Results[0]].Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return t
}

// isNilExpr reports whether e is the predeclared nil (an error-path return).
func isNilExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

// relType renders t relative to the pass's package for a readable message.
func relType(p *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(p.Pkg))
}

// auditGobFields checks that t (a wire-crossing cell result) has only
// exported, gob-encodable fields, recursing through the structs, slices,
// arrays, maps, and pointers it contains. Types that implement GobEncoder
// own their wire format and are skipped.
func auditGobFields(p *Pass, t types.Type, at token.Pos, audited map[string]bool) {
	key := types.TypeString(t, nil)
	if audited[key] {
		return
	}
	audited[key] = true

	switch u := t.(type) {
	case *types.Pointer:
		auditGobFields(p, u.Elem(), at, audited)
		return
	case *types.Slice:
		auditGobFields(p, u.Elem(), at, audited)
		return
	case *types.Array:
		auditGobFields(p, u.Elem(), at, audited)
		return
	case *types.Map:
		auditGobFields(p, u.Key(), at, audited)
		auditGobFields(p, u.Elem(), at, audited)
		return
	}

	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if hasGobEncoder(named) {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			p.Reportf(at, "wire type %s has unexported field %s.%s; gob drops it silently — export it or implement GobEncoder", relType(p, t), named.Obj().Name(), f.Name())
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Signature:
			p.Reportf(at, "wire type %s has func-typed field %s.%s; gob cannot encode it", relType(p, t), named.Obj().Name(), f.Name())
		case *types.Chan:
			p.Reportf(at, "wire type %s has chan-typed field %s.%s; gob cannot encode it", relType(p, t), named.Obj().Name(), f.Name())
		default:
			auditGobFields(p, f.Type(), at, audited)
		}
	}
}

// hasGobEncoder reports whether named declares a GobEncode method (on any
// receiver), marking it a gob.GobEncoder that owns its wire format.
func hasGobEncoder(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "GobEncode" {
			return true
		}
	}
	return false
}
