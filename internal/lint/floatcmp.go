package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point operands everywhere
// in the module: exact float equality between computed values is almost
// always a rounding-sensitive bug. Three shapes are exempt because they are
// deliberate and well-defined:
//
//   - comparison against a compile-time constant (sentinel checks such as
//     cfg.Quorum == 0 compare a stored, never-computed value),
//   - x != x and x == x (the NaN idiom),
//   - the bodies of approved tolerance helpers (policy.ToleranceHelpers),
//     whose whole job is comparing floats,
//   - sort comparators (func literals passed to sort.Slice/SliceStable and
//     slices.SortFunc/SortStableFunc): exact inequality there is the
//     deterministic tie-break idiom — bitwise-equal keys must fall through
//     to the ID tie-break, and an epsilon would make the order
//     input-order-dependent.
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc:  "ban exact float equality outside approved tolerance helpers",
	Run:  runFloatCompare,
}

func runFloatCompare(p *Pass) {
	for _, f := range p.Files {
		comparators := comparatorSpans(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && ToleranceHelpers[qualifiedName(p, fd)] {
				return false // approved helper: skip its whole body
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			if isConst(p, be.X) || isConst(p, be.Y) {
				return true
			}
			if exprString(be.X) == exprString(be.Y) {
				return true // NaN idiom: x != x
			}
			if insideSpan(comparators, be.OpPos) {
				return true // sort-comparator tie-break
			}
			p.Reportf(be.OpPos, "exact float comparison (%s); use a tolerance helper or compare with an epsilon", be.Op)
			return true
		})
	}
}

// isConst reports whether e is a compile-time constant expression.
func isConst(p *Pass, e ast.Expr) bool {
	return p.Info.Types[e].Value != nil
}

// qualifiedName renders fd as policy.ToleranceHelpers keys it:
// "path.Func" or "path.Type.Method".
func qualifiedName(p *Pass, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return p.Path + "." + name
}

// exprString renders an expression for structural comparison.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// comparatorSpans collects the source spans of func literals passed to the
// stdlib sort entry points, where exact float comparison is the
// deterministic tie-break idiom.
func comparatorSpans(p *Pass, f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pkgFunc(p, sel)
		if fn == nil {
			return true
		}
		sorter := false
		switch fn.Pkg().Path() {
		case "sort":
			sorter = fn.Name() == "Slice" || fn.Name() == "SliceStable" || fn.Name() == "Search"
		case "slices":
			sorter = fn.Name() == "SortFunc" || fn.Name() == "SortStableFunc" || fn.Name() == "BinarySearchFunc"
		}
		if !sorter {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				spans = append(spans, [2]token.Pos{fl.Pos(), fl.End()})
			}
		}
		return true
	})
	return spans
}

// insideSpan reports whether pos falls inside any span.
func insideSpan(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if s[0] <= pos && pos <= s[1] {
			return true
		}
	}
	return false
}
