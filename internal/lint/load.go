package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the type-checker's results.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks a tree of packages with full
// type information using only the standard library: module (or corpus)
// packages are checked from source in dependency order, and standard-library
// imports are resolved by go/importer's source importer against GOROOT.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom

	// dirs maps the import path of every discovered tree package to its
	// directory; pkgs caches checked packages; checking guards cycles.
	dirs     map[string]string
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader returns a loader ready to Load a tree.
func NewLoader() *Loader {
	// The source importer type-checks stdlib packages straight from
	// GOROOT/src. With cgo enabled it would try to preprocess cgo files
	// (package net); type information for the pure-Go variants is
	// equivalent for linting, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		dirs:     map[string]string{},
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// Fset returns the loader's shared file set; use it to resolve positions in
// the packages it returns.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadModule loads every package of the Go module rooted at root (the
// directory containing go.mod), returning them sorted by import path.
// Directories named testdata (and hidden/underscore directories) are
// skipped, as the go tool does.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	if err := l.discover(root, module); err != nil {
		return nil, err
	}
	return l.checkAll()
}

// LoadTree loads a GOPATH-style source tree: every package directory under
// srcRoot becomes a package whose import path is its path relative to
// srcRoot. The lint test corpora use this to mirror real module import
// paths (testdata/<rule>/src/helcfl/internal/fl → "helcfl/internal/fl").
func (l *Loader) LoadTree(srcRoot string) ([]*Package, error) {
	if err := l.discover(srcRoot, ""); err != nil {
		return nil, err
	}
	return l.checkAll()
}

// discover walks root registering every buildable package directory. When
// module is non-empty the import path is module[/rel]; otherwise it is rel.
func (l *Loader) discover(root, module string) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("lint: scan %s: %w", path, err)
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		imp := rel
		if module != "" {
			if rel == "." {
				imp = module
			} else {
				imp = module + "/" + rel
			}
		}
		l.dirs[imp] = path
		return nil
	})
}

// checkAll type-checks every discovered package (dependency order is
// resolved lazily through ImportFrom) and returns them sorted by path.
func (l *Loader) checkAll() ([]*Package, error) {
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// load parses and type-checks one tree package, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirs[path]
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: tree packages resolve to our
// own checked packages; everything else is treated as standard library and
// type-checked from GOROOT source. srcDir is pinned inside GOROOT so the
// underlying go/build lookup never consults module resolution.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, filepath.Join(runtime.GOROOT(), "src"), 0)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
