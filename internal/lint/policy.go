package lint

import "strings"

// Class is a package's stance toward the determinism contract.
type Class string

const (
	// ClassDeterministic marks a package on the replayable-from-seed path:
	// Algorithms 1–3, the model substrate, and everything the bit-identity
	// tests cover. No wall clock, no global math/rand, no unordered map
	// iteration feeding order-sensitive work.
	ClassDeterministic Class = "deterministic"
	// ClassRuntime marks a package that interacts with wall clock, OS, or
	// network by design (observability, deployment, chaos injection,
	// durable storage, CLIs). The determinism rules do not apply; the
	// durability and context rules may.
	ClassRuntime Class = "runtime"
)

// Packages classifies every package in the module. This table is the single
// source of truth for which code is on the deterministic path: a module
// package that is missing here is reported as a "policy" finding, so a new
// package must opt in or out explicitly before the tree lints clean.
var Packages = map[string]Class{
	// The public facade re-exports the deterministic core and must stay as
	// replayable as what it wraps.
	"helcfl": ClassDeterministic,

	// The deterministic set: scheduler decisions (Algorithms 2–3), the FL
	// engine (Algorithm 1, Eq. 18 FedAvg), and every model/cost substrate
	// they consume. One stray time.Now() here breaks the sim↔deploy
	// conformance and split-resume guarantees downstream.
	"helcfl/internal/compress":    ClassDeterministic,
	"helcfl/internal/core":        ClassDeterministic,
	"helcfl/internal/dataset":     ClassDeterministic,
	"helcfl/internal/device":      ClassDeterministic,
	"helcfl/internal/experiments": ClassDeterministic,
	"helcfl/internal/fl":          ClassDeterministic,
	"helcfl/internal/grid":        ClassDeterministic,
	"helcfl/internal/metrics":     ClassDeterministic,
	"helcfl/internal/nn":          ClassDeterministic,
	// The span tracer is deterministic in structure (span counts, names,
	// parents, and attributes repeat across runs; only durations vary).
	// Its single audited clock site is span.now(), which carries the one
	// //helcfl:allow(nondeterminism) exemption for the package.
	"helcfl/internal/obs/span":  ClassDeterministic,
	"helcfl/internal/report":    ClassDeterministic,
	"helcfl/internal/selection": ClassDeterministic,
	"helcfl/internal/sim":       ClassDeterministic,
	"helcfl/internal/stats":     ClassDeterministic,
	"helcfl/internal/tensor":    ClassDeterministic,
	"helcfl/internal/trace":     ClassDeterministic,
	"helcfl/internal/wireless":  ClassDeterministic,

	// The runtime set: wall clock, sockets, and disks by design.
	"helcfl/internal/chaos":      ClassRuntime,
	"helcfl/internal/checkpoint": ClassRuntime,
	"helcfl/internal/deploy":     ClassRuntime,
	// The fleet coordinator/worker pair leases cells over HTTP with
	// wall-clock lease deadlines; the cells it runs stay deterministic.
	"helcfl/internal/fleet": ClassRuntime,
	"helcfl/internal/lint":  ClassRuntime,
	"helcfl/internal/obs":   ClassRuntime,
	// The shared backoff engine sleeps on timers by design.
	"helcfl/internal/retry": ClassRuntime,
	// The flight recorder is crash forensics: signals, wall clock,
	// filesystem dumps, and HTTP by design.
	"helcfl/internal/obs/flight": ClassRuntime,

	// Binaries and runnable examples wire the system to the outside world.
	"helcfl/cmd/helcfl":         ClassRuntime,
	"helcfl/cmd/helcfl-inspect": ClassRuntime,
	"helcfl/cmd/helcfl-lint":    ClassRuntime,
	"helcfl/cmd/helcfl-node":    ClassRuntime,

	"helcfl/examples/battery":       ClassRuntime,
	"helcfl/examples/centralized":   ClassRuntime,
	"helcfl/examples/compression":   ClassRuntime,
	"helcfl/examples/deploy":        ClassRuntime,
	"helcfl/examples/energy":        ClassRuntime,
	"helcfl/examples/heterogeneity": ClassRuntime,
	"helcfl/examples/noniid":        ClassRuntime,
	"helcfl/examples/quickstart":    ClassRuntime,

	// The corpus harness for this package's own tests.
	"helcfl/internal/lint/linttest": ClassRuntime,

	// The goroutine-leak test harness snapshots runtime stacks by design.
	"helcfl/internal/leaktest": ClassRuntime,
}

// DurabilityPackages hold persistence code where a missed fsync or a
// silently dropped Close/Sync/Flush error can lose acknowledged state. The
// durability analyzer applies here.
var DurabilityPackages = map[string]bool{
	"helcfl/internal/checkpoint": true,
	"helcfl/internal/deploy":     true,
}

// ContextPackages make network requests and wait on timers; every request
// and sleep there must flow a context.Context so shutdown and per-request
// deadlines propagate. The ctxflow analyzer applies here.
var ContextPackages = map[string]bool{
	"helcfl/internal/deploy": true,
	"helcfl/internal/fleet":  true,
	"helcfl/internal/retry":  true,
}

// MapOrderExtra extends the maporder analyzer beyond the deterministic set:
// these runtime packages also feed FedAvg and durable state, where an
// iteration-order dependence would diverge replay from the original run.
var MapOrderExtra = map[string]bool{
	"helcfl/internal/checkpoint": true,
	"helcfl/internal/deploy":     true,
}

// ToleranceHelpers are the approved homes for exact float comparison:
// functions whose whole purpose is comparing floats (tolerance helpers,
// bitwise round-trip checks). The floatcompare analyzer skips their bodies.
// Keys are qualified names: "import/path.Func" or "import/path.Type.Method".
var ToleranceHelpers = map[string]bool{
	// trace.Validate screens records for exact NaN/Inf/negative-zero
	// artifacts by design.
	"helcfl/internal/trace.Validate": true,
	// tensor.Equal is bitwise equality by contract — it is what the
	// bit-identity tests compare with.
	"helcfl/internal/tensor.Tensor.Equal": true,
}

// GoroutineScopedPackages are the concurrent-runtime packages where a `go`
// statement must show a visible lifecycle — a WaitGroup join, a done/result
// channel, or a ctx-bound loop. A fire-and-forget goroutine here outlives its
// campaign, which is exactly what the leaktest harness catches at runtime;
// the golife analyzer catches it at review time.
var GoroutineScopedPackages = map[string]bool{
	"helcfl/internal/deploy":     true,
	"helcfl/internal/fleet":      true,
	"helcfl/internal/grid":       true,
	"helcfl/internal/obs":        true,
	"helcfl/internal/obs/flight": true,
	"helcfl/internal/obs/span":   true,
}

// WireCodecPackages hold the experiments registry, where every cell result
// type a grid.Cell's Run can return must carry a gob registration in the
// fleet wire codec (Encode/DecodeCellResult). The wirecodec analyzer applies
// here.
var WireCodecPackages = map[string]bool{
	"helcfl/internal/experiments": true,
}

// BlockingCalls are module-internal functions that block on I/O (fsync,
// network) and therefore must not run while a mutex is held. Keys are
// qualified names ("import/path.Func" or "import/path.Type.Method"), values
// say why the call blocks; the lockheld analyzer reports them alongside the
// stdlib's own blocking operations.
var BlockingCalls = map[string]string{
	"helcfl/internal/checkpoint.WAL.Append": "fsyncs a WAL record to disk",
	"helcfl/internal/checkpoint.WAL.Reset":  "truncates and fsyncs the WAL",
	"helcfl/internal/checkpoint.WriteFile":  "writes and fsyncs a snapshot",
	"helcfl/internal/checkpoint.ReadFile":   "reads a snapshot from disk",
}

// Classified reports whether path is in the policy table. Corpus packages
// under a lint testdata tree mirror real module paths, so they classify the
// same way.
func Classified(path string) bool {
	_, ok := Packages[path]
	return ok
}

// IsDeterministic reports whether path is on the replayable-from-seed path.
func IsDeterministic(path string) bool {
	return Packages[path] == ClassDeterministic
}

// IsMapOrderScoped reports whether the maporder analyzer applies to path.
func IsMapOrderScoped(path string) bool {
	return IsDeterministic(path) || MapOrderExtra[path]
}

// IsDurability reports whether the durability analyzer applies to path.
func IsDurability(path string) bool { return DurabilityPackages[path] }

// IsContextScoped reports whether the ctxflow analyzer applies to path.
func IsContextScoped(path string) bool { return ContextPackages[path] }

// IsGoroutineScoped reports whether the golife analyzer applies to path.
func IsGoroutineScoped(path string) bool { return GoroutineScopedPackages[path] }

// IsWireCodecScoped reports whether the wirecodec analyzer applies to path.
func IsWireCodecScoped(path string) bool { return WireCodecPackages[path] }

// InModule reports whether path names this module or a package inside it.
func InModule(path, module string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}
