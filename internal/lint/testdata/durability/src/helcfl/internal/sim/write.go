// Corpus scoping check: helcfl/internal/sim is not a durability package, so
// the same convenience write produces no findings there.
package sim

import "os"

func exportCSV(path string, rows []byte) error {
	return os.WriteFile(path, rows, 0o644)
}
