// Corpus for the durability analyzer: helcfl/internal/checkpoint is a
// persistence package, so missed fsyncs and silently dropped
// Close/Sync/Flush errors are findings; the full write-temp → Sync → Close
// → Rename → sync-dir sequence passes.
package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
)

// os.WriteFile never fsyncs.
func writeFast(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile never fsyncs`
}

// Renaming without an fsync leaves the new bytes in the page cache.
func swapIn(tmp, path string) error {
	return os.Rename(tmp, path) // want `os.Rename without an fsync in swapIn`
}

// Writing and closing a file without Sync can lose acknowledged bytes; the
// bare closes also drop their errors.
func writeUnsynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil { // want `writeUnsynced writes and closes an \*os.File without Sync`
		f.Close() // want `f.Close\(\) discards its error`
		return err
	}
	return f.Close()
}

// A bare deferred Close drops the error too.
func readBack(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // want `defer f.Close\(\) discards its error`
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size())
	_, err = f.Read(buf)
	return buf, err
}

// The approved sequence: every error handled, Sync before Close, Rename
// only after the temp file is durable, then the directory entry.
func writeDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "dur*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(name)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	syncErr := d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("close dir: %w", err)
	}
	return syncErr
}

// A justified allow suppresses the finding.
func closeQuiet(f *os.File) {
	defer f.Close() //helcfl:allow(durability) corpus fixture: read-only handle; closing it cannot lose data
	_, _ = f.Seek(0, 0)
}
