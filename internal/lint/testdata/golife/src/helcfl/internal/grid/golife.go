package grid

import (
	"context"
	"sync"
)

func work() {}

// Approved shapes: a WaitGroup join, channel communication, a done-channel
// loop, closing a channel, ranging a channel, and named calls that receive a
// lifecycle.

func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func sendsResult(ch chan int) {
	go func() {
		work()
		ch <- 1
	}()
}

func doneChannelLoop(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func closesChannel(ch chan int) {
	go func() {
		work()
		close(ch)
	}()
}

func rangesChannel(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

func namedWithCtx(ctx context.Context) {
	go pump(ctx)
}

func namedWithChannel(ch chan int) {
	go drain(ch)
}

func namedWithWaitGroup(wg *sync.WaitGroup) {
	go joined(wg)
}

func pump(ctx context.Context)  { <-ctx.Done() }
func drain(ch chan int)         { <-ch }
func joined(wg *sync.WaitGroup) { wg.Done() }
func orphan()                   { work() }

// Violations: nothing joins or bounds the goroutine.

func fireAndForget() {
	go func() { // want "fire-and-forget goroutine: the body joins no WaitGroup and communicates on no channel"
		work()
	}()
}

func fireAndForgetNamed() {
	go orphan() // want "fire-and-forget goroutine: the call receives no context, channel, or WaitGroup"
}

// allowed pins the escape hatch.
func allowed() {
	//helcfl:allow(golife) process-lifetime janitor; dies with the process by design
	go func() {
		work()
	}()
}
