package fl

// fl is not in policy.GoroutineScopedPackages, so even a bare goroutine
// produces nothing here — the rule is scoped to the concurrent runtime.

func work() {}

func outOfScope() {
	go func() {
		work()
	}()
}
