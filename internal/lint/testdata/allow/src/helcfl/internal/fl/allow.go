// Corpus for the //helcfl:allow escape hatch itself: a directive with no
// reason, an unknown rule, or unparseable syntax is a finding of rule
// "allow", and a malformed directive does NOT suppress the underlying
// diagnostic. directive_test.go asserts on this file directly rather than
// through want comments, because a directive line cannot also carry a want.
package fl

import "time"

// Missing reason: the directive is reported and the time.Now finding below
// it stays unsuppressed.
//
//helcfl:allow(nondeterminism)
func noReason() time.Time { return time.Now() }

// Unknown rule: reported, and the finding stays unsuppressed.
//
//helcfl:allow(clockness) clocks are fine here
func unknownRule() time.Time { return time.Now() }

// Unparseable: no (rule) at all.
//
//helcfl:allow please
func malformed() int { return 0 }

// Well-formed: rule and reason present, so the finding below is suppressed.
//
//helcfl:allow(nondeterminism) corpus fixture: justified suppression for contrast
func justified() time.Time { return time.Now() }
