// Package span is a corpus mirror of the real tracer: just enough API
// surface (Ref, Span, Recorder.Start, StartCtx, End) for the spanend corpus
// to typecheck against the same import path the analyzer matches.
package span

import "context"

type Ref struct{ ID uint64 }

type Span struct{ id uint64 }

func (s Span) End()                      {}
func (s Span) Ref() Ref                  { return Ref{} }
func (s Span) SetInt(k string, v int64)  {}
func (s Span) SetStr(k string, v string) {}

type Recorder struct{}

func (r *Recorder) Start(parent Ref, name string) Span { return Span{} }

func StartCtx(ctx context.Context, name string) (context.Context, Span) {
	return ctx, Span{}
}
