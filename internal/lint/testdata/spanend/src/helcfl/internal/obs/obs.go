// Package obs is a corpus mirror of the metrics timer Span (the second span
// type the spanend analyzer tracks).
package obs

type Hist struct{}

type Span struct{ h *Hist }

func (s Span) End() {}

func StartSpan(h *Hist) Span { return Span{} }
