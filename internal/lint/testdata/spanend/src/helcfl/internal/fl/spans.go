package fl

import (
	"context"
	"errors"

	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
)

var errNope = errors.New("nope")

func work() {}

// Approved shapes: defer, End on every exit, the conditional-timer idiom,
// and spans that escape to another owner.

func deferred(r *span.Recorder, fail bool) error {
	sp := r.Start(span.Ref{}, "work")
	defer sp.End()
	if fail {
		return errNope
	}
	return nil
}

func endsEverywhere(r *span.Recorder, n int) int {
	sp := r.Start(span.Ref{}, "compute")
	if n < 0 {
		sp.End()
		return -1
	}
	sp.End()
	return n
}

func startCtx(ctx context.Context) error {
	runCtx, runSp := span.StartCtx(ctx, "cell.run")
	defer runSp.End()
	<-runCtx.Done()
	return runCtx.Err()
}

// conditionalTimer is the grid-runner idiom: a zero Span is assigned only
// when metrics are on, and End is reached unconditionally.
func conditionalTimer(h *obs.Hist, on bool) {
	var timer obs.Span
	if on {
		timer = obs.StartSpan(h)
	}
	work()
	timer.End()
}

// handedOff escapes by returning: the caller owns the End.
func handedOff(r *span.Recorder) span.Span {
	sp := r.Start(span.Ref{}, "handed off")
	return sp
}

// capturedByClosure escapes into the closure: the closure owns the End.
func capturedByClosure(r *span.Recorder) func() {
	sp := r.Start(span.Ref{}, "deferred elsewhere")
	return func() { sp.End() }
}

// Violations: exits that skip the End.

func earlyReturn(r *span.Recorder, fail bool) error {
	sp := r.Start(span.Ref{}, "work") // want "span sp does not reach End\(\) on all paths \(return"
	if fail {
		return errNope
	}
	sp.End()
	return nil
}

func panics(r *span.Recorder, bad bool) {
	sp := r.Start(span.Ref{}, "work") // want "span sp does not reach End\(\) on all paths \(panic"
	if bad {
		panic("bad")
	}
	sp.End()
}

func fallsOffEnd(r *span.Recorder) {
	sp := r.Start(span.Ref{}, "work") // want "span sp does not reach End\(\) on all paths \(function end"
	work()
	_ = sp.Ref()
}

func leaksInLoop(r *span.Recorder, xs []int) {
	for _, x := range xs {
		sp := r.Start(span.Ref{}, "iter") // want "span sp does not reach End\(\) on all paths \(loop end"
		if x > 0 {
			sp.End()
		}
	}
}

// ctxCancelBranch loses the span on the cancellation arm.
func ctxCancelBranch(ctx context.Context, r *span.Recorder, ch chan int) error {
	sp := r.Start(span.Ref{}, "wait") // want "span sp does not reach End\(\) on all paths \(return"
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ch:
	}
	sp.End()
	return nil
}

// Discarded results can never be Ended.

func discarded(ctx context.Context, r *span.Recorder) {
	r.Start(span.Ref{}, "dropped")        // want "span result discarded"
	ctx2, _ := span.StartCtx(ctx, "oops") // want "span result discarded"
	_ = ctx2
}

// allowed pins the escape hatch: a justified directive silences the rule.
func allowed(r *span.Recorder, fail bool) error {
	//helcfl:allow(spanend) aborted work is deliberately left unrecorded
	sp := r.Start(span.Ref{}, "work")
	if fail {
		return errNope
	}
	sp.End()
	return nil
}
