// Package grid is a corpus mirror of the campaign grid: the Cell type at
// the real import path, so the wirecodec analyzer anchors on it.
package grid

import "context"

type Cell struct {
	Experiment, Preset, Setting, Scheme, Variant string
	Seed                                         int64
	Run                                          func(ctx context.Context) (any, error)
}
