package experiments

import (
	"context"
	"errors"

	"helcfl/internal/grid"
)

var errSkip = errors.New("skip")

// missingRun is produced by a cell but never registered: the exhaustiveness
// hole fleet mode would hit at decode time.
type missingRun struct{ X int }

func anyResult() any { return nil }

func opaqueRun(context.Context) (any, error) { return nil, nil }

// forwarded pins the tuple-forward shape: `return helper(ctx)` where the
// helper's concrete first result is what crosses the wire.
func forwarded(context.Context) (*ptrRun, error) { return &ptrRun{}, nil }

func cells() []grid.Cell {
	return []grid.Cell{
		{
			Experiment: "good",
			Run:        func(context.Context) (any, error) { return goodRun{Acc: 1}, nil },
		},
		{
			Experiment: "ptr",
			Run: func(context.Context) (any, error) {
				if false {
					return nil, errSkip // the nil error path is not a result type
				}
				return &ptrRun{}, nil
			},
		},
		{
			Experiment: "forward",
			Run:        func(ctx context.Context) (any, error) { return forwarded(ctx) },
		},
		{
			Experiment: "missing",
			Run:        func(context.Context) (any, error) { return missingRun{}, nil }, // want "cell result type missingRun has no gob.Register in the wire codec"
		},
		{
			Experiment: "iface",
			Run:        func(context.Context) (any, error) { return anyResult(), nil }, // want "cell Run returns an interface-typed result"
		},
		{
			Experiment: "opaque",
			Run:        opaqueRun, // want "cell Run is not a function literal"
		},
	}
}
