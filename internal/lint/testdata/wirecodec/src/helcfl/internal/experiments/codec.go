package experiments

import "encoding/gob"

func init() {
	gob.Register(goodRun{})
	gob.Register(&ptrRun{})
	gob.Register(selfCodec{})
	gob.Register(badFields{}) // want "wire type badFields has unexported field badFields.secret"
	gob.Register(chanField{}) // want "wire type chanField has chan-typed field chanField.C"
	gob.Register(nestedBad{}) // want "wire type innerT has unexported field innerT.ok"
}

// goodRun and ptrRun are registered with gob-safe fields: no findings.
type goodRun struct{ Acc float64 }
type ptrRun struct{ N int }

// selfCodec owns its wire format via GobEncoder, so its unexported field is
// exempt from the audit.
type selfCodec struct{ hidden int }

func (selfCodec) GobEncode() ([]byte, error) { return nil, nil }
func (*selfCodec) GobDecode([]byte) error    { return nil }

// badFields has a field gob silently drops.
type badFields struct {
	Public float64
	secret int
}

// chanField cannot be gob-encoded at all.
type chanField struct{ C chan int }

// nestedBad is clean at the top level but carries an unsafe struct one hop
// down — the audit recurses.
type nestedBad struct{ Inner innerT }

type innerT struct{ ok bool }
