// Corpus exemption check: helcfl/internal/trace.Validate is listed in
// policy.ToleranceHelpers — its whole job is screening floats — so exact
// comparisons inside its body produce no findings. Other functions in the
// same package stay covered.
package trace

func Validate(xs []float64) bool {
	for i, x := range xs {
		if x != x {
			return false
		}
		if i > 0 && xs[i] == xs[i-1] {
			return false
		}
	}
	return true
}

func notExempt(a, b float64) bool {
	return a == b // want "exact float comparison"
}
