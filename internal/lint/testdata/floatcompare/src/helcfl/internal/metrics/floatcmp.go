// Corpus for the floatcompare analyzer: exact == / != between computed
// floats is a finding everywhere in the module; constant sentinels, the NaN
// idiom, sort-comparator tie-breaks, and approved tolerance helpers pass.
package metrics

import (
	"slices"
	"sort"
)

// Exact equality between computed floats is rounding-sensitive.
func converged(prev, cur float64) bool {
	return prev == cur // want "exact float comparison"
}

func moved(prev, cur float32) bool {
	return prev != cur // want "exact float comparison"
}

// Comparison against a compile-time constant is a sentinel check on a
// stored, never-computed value.
func unset(quorum float64) bool {
	const sentinel = -1.0
	return quorum == 0 || quorum == sentinel
}

// The NaN idiom compares an expression to itself.
func isNaN(x float64) bool {
	return x != x
}

// Ordered comparisons are not equality and pass.
func better(a, b float64) bool {
	return a < b
}

// Sort comparators may tie-break with exact inequality: bitwise-equal keys
// must fall through to the deterministic ID tie-break.
func rank(score []float64, id []int) {
	sort.Slice(id, func(i, j int) bool {
		if score[id[i]] != score[id[j]] {
			return score[id[i]] > score[id[j]]
		}
		return id[i] < id[j]
	})
	slices.SortFunc(id, func(a, b int) int {
		if score[a] == score[b] {
			return a - b
		}
		if score[a] > score[b] {
			return -1
		}
		return 1
	})
}

// Outside the comparator literal the same comparison is still a finding.
func sortThenCompare(xs []float64) bool {
	sort.Float64s(xs)
	return xs[0] == xs[len(xs)-1] // want "exact float comparison"
}

// A justified allow suppresses the finding.
func degenerate(lo, hi float64) bool {
	return lo == hi //helcfl:allow(floatcompare) corpus fixture: exact degenerate-range guard before dividing by the span
}
