// Corpus for the noalloc analyzer: functions marked //helcfl:noalloc may
// not contain allocating constructs — make/new/append, slice and map
// literals, &T{…}, closures, go statements, string concatenation, or
// string↔slice conversions. Unmarked functions are out of scope however
// much they allocate, and a justified //helcfl:allow(noalloc) suppresses a
// finding like any other rule.
package tensor

// axpyRows is a well-behaved kernel: loops, index arithmetic, scalar math,
// struct values, calls — nothing allocates.
//
//helcfl:noalloc
func axpyRows(dst, src []float64, alpha float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += alpha * src[i]
	}
}

// makeScratch regresses by allocating its own buffers.
//
//helcfl:noalloc
func makeScratch(n int) {
	buf := make([]float64, n) // want "marked //helcfl:noalloc but calls make"
	_ = buf
	p := new(int) // want "marked //helcfl:noalloc but calls new"
	_ = p
}

// appendRows regresses by growing a slice.
//
//helcfl:noalloc
func appendRows(dst []float64, v float64) []float64 {
	return append(dst, v) // want "marked //helcfl:noalloc but calls append"
}

// literalKernels builds slice and map literals.
//
//helcfl:noalloc
func literalKernels() {
	xs := []float64{1, 2, 3} // want "marked //helcfl:noalloc but builds a slice literal"
	_ = xs
	m := map[int]int{} // want "marked //helcfl:noalloc but builds a map literal"
	_ = m
}

type header struct{ rows, cols int }

// valueStruct is fine: a plain struct value lives on the stack.
//
//helcfl:noalloc
func valueStruct(rows, cols int) header {
	return header{rows: rows, cols: cols}
}

// boxedStruct takes the literal's address, which escapes.
//
//helcfl:noalloc
func boxedStruct(rows, cols int) *header {
	return &header{rows: rows, cols: cols} // want "marked //helcfl:noalloc but takes the address of a composite literal"
}

// closureKernel materializes a func literal — the classic serial-path
// regression the WorkersFor branch idiom exists to avoid.
//
//helcfl:noalloc
func closureKernel(n int, shard func(int, int, func(int, int))) {
	shard(n, 2, func(lo, hi int) { // want "marked //helcfl:noalloc but contains a function literal"
		_ = lo + hi
	})
}

// spawner starts a goroutine per call.
//
//helcfl:noalloc
func spawner(done chan struct{}) {
	go func() { // want "marked //helcfl:noalloc but spawns a goroutine"
		done <- struct{}{}
	}()
}

// stringy concatenates and converts strings.
//
//helcfl:noalloc
func stringy(name string, raw []byte) string {
	s := name + "-suffix" // want "marked //helcfl:noalloc but concatenates strings"
	b := []byte(name)     // want "marked //helcfl:noalloc but performs an allocating conversion"
	_ = b
	return s + string(raw) // want "marked //helcfl:noalloc but concatenates strings" "marked //helcfl:noalloc but performs an allocating conversion"
}

// unmarked allocates freely: the contract is opt-in.
func unmarked(n int) []float64 {
	return make([]float64, n)
}

// allowed shows the escape hatch: a justified allow suppresses the finding.
//
//helcfl:noalloc
func allowed(n int) []int {
	return make([]int, n) //helcfl:allow(noalloc) one-time warm-up growth measured by the alloc gate
}
