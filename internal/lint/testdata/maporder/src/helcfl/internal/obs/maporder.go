// Corpus scoping check: helcfl/internal/obs is runtime and not in
// policy.MapOrderExtra, so the same shape produces no findings.
package obs

func labels(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
