// Corpus scoping check: helcfl/internal/checkpoint is runtime but listed in
// policy.MapOrderExtra — its serialized bytes feed durable state, so
// map-order dependence is still a finding here.
package checkpoint

func serialize(state map[string]uint64) []uint64 {
	var words []uint64
	for _, w := range state {
		words = append(words, w) // want "append to a slice that outlives this map range"
	}
	return words
}
