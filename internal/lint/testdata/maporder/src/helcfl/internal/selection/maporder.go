// Corpus for the maporder analyzer: helcfl/internal/selection is on the
// deterministic path, so map-iteration-order-sensitive bodies are findings
// while order-independent ones pass.
package selection

import (
	"fmt"
	"io"
	"sort"
)

// Appending to a slice that outlives the loop records map iteration order.
func collectIDs(devices map[int]float64) []int {
	var ids []int
	for id := range devices {
		ids = append(ids, id) // want "append to a slice that outlives this map range"
	}
	return ids
}

// Float accumulation inside a map range is order-dependent: FP addition is
// not associative.
func totalCost(costs map[string]float64) float64 {
	var sum float64
	for _, c := range costs {
		sum += c // want "float accumulation inside a map range is order-dependent"
	}
	return sum
}

// Emitting output per iteration prints in map order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "inside a map range emits output in map-iteration order"
	}
}

// The approved shape: iterate a sorted key slice. The inner range is over a
// slice, so nothing is flagged.
func collectSorted(devices map[int]float64) []int {
	keys := make([]int, 0, len(devices))
	for id := range devices {
		keys = append(keys, id) // want "append to a slice that outlives this map range"
	}
	sort.Ints(keys)
	ids := make([]int, 0, len(keys))
	for _, id := range keys {
		ids = append(ids, id)
	}
	return ids
}

// Order-independent bodies pass: integer counting, keyed writes landing in
// a per-key slot, deletes, and appends to loop-local slices.
func orderFree(m map[string][]float64, drop string) (int, map[string]int) {
	n := 0
	lengths := make(map[string]int, len(m))
	for k, vs := range m {
		n += len(vs)
		lengths[k] = len(vs)
		m[k] = append(m[k], 0)
		local := make([]float64, 0, len(vs))
		local = append(local, vs...)
		lengths[k] += len(local)
	}
	delete(m, drop)
	return n, lengths
}

// A justified allow suppresses the finding.
func keysUnordered(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k) //helcfl:allow(maporder) corpus fixture: caller sorts the result before use
	}
	sort.Ints(ks)
	return ks
}
