// Corpus for the nondeterminism analyzer: helcfl/internal/fl is
// classified deterministic, so wall-clock reads and global randomness are
// findings here while seeded generators pass.
package fl

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Wall-clock reads.
func wallClock(start time.Time) (time.Time, float64, float64) {
	now := time.Now()              // want "time.Now reads the wall clock"
	elapsed := time.Since(start)   // want "time.Since reads the wall clock"
	remaining := time.Until(start) // want "time.Until reads the wall clock"
	return now, elapsed.Seconds(), remaining.Seconds()
}

// Global math/rand and math/rand/v2 draw from a non-replayable source.
func globalRand() (int, float64, uint64) {
	a := rand.Intn(10)                 // want `global math/rand.Intn is not replayable`
	b := randv2.Float64()              // want `global math/rand/v2.Float64 is not replayable`
	c := randv2.Uint64()               // want `global math/rand/v2.Uint64 is not replayable`
	rand.Shuffle(a, func(i, j int) {}) // want `global math/rand.Shuffle is not replayable`
	return a, b, c
}

// crypto/rand is nondeterministic by definition.
func cryptoRand(buf []byte) (int, error) {
	return crand.Read(buf) // want `crypto/rand.Read is nondeterministic by definition`
}

// Seeding a generator from the clock defeats injection even when the
// constructor itself is approved; the line carries both findings.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now reads the wall clock" "seeded from the time package"
}

// The approved pattern: generators built from a seed injected by the
// caller are replayable and pass untouched.
func seeded(seed int64, pcgA, pcgB uint64) (float64, uint64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1.0, 100)
	v2 := randv2.New(randv2.NewPCG(pcgA, pcgB))
	return rng.Float64() + float64(zipf.Uint64()), v2.Uint64()
}

// Non-call uses of package time (types, constants, arithmetic) are fine.
func duration(steps int) time.Duration {
	return time.Duration(steps) * time.Millisecond
}

// A justified allow suppresses the finding; the corpus harness checks
// that no diagnostic escapes for this line.
func telemetry() time.Time {
	return time.Now() //helcfl:allow(nondeterminism) corpus fixture: telemetry-only span with no control-flow effect
}
