// Corpus scoping check: helcfl/internal/obs is classified runtime, so the
// nondeterminism analyzer does not apply and the same wall-clock and
// global-randomness calls produce no findings.
package obs

import (
	"math/rand"
	"time"
)

func stamp() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
