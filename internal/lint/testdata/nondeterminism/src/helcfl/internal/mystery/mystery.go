// Corpus policy check: this package is absent from the policy table, which
// is itself a finding — new packages must be classified explicitly.
package mystery // want "not classified in internal/lint/policy.go"

func Two() int { return 2 }
