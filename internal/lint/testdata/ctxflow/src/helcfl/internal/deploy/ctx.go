// Corpus for the ctxflow analyzer: helcfl/internal/deploy is a context
// package, so context-free HTTP requests and uncancellable waits are
// findings; NewRequestWithContext and ctx-guarded selects pass.
package deploy

import (
	"context"
	"net/http"
	"time"
)

// The http conveniences carry no context.
func fetch(url string) (*http.Response, error) {
	return http.Get(url) // want `http.Get has no context`
}

func push(url string) (*http.Response, error) {
	return http.Post(url, "application/octet-stream", nil) // want `http.Post has no context`
}

// http.NewRequest drops the caller's context.
func buildPlain(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `http.NewRequest drops the caller's context`
}

// The approved shape threads the context into the request.
func buildCtx(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// time.Sleep cannot be cancelled.
func backoff(d time.Duration) {
	time.Sleep(d) // want `time.Sleep cannot be cancelled`
}

// time.After outside a ctx-guarded select waits out its full duration even
// after cancellation.
func waitPlain(d time.Duration) {
	<-time.After(d) // want `time.After outside a select`
}

// Inside a select that also receives ctx.Done(), time.After races the
// context and passes.
func waitGuarded(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Timer types and arithmetic are fine; only the blocking calls are flagged.
func deadline(now time.Time, d time.Duration) time.Time {
	return now.Add(d)
}

// A justified allow suppresses the finding.
func settle() {
	time.Sleep(time.Millisecond) //helcfl:allow(ctxflow) corpus fixture: sub-millisecond scheduler yield in a shutdown path
}
