// Corpus scoping check: helcfl/internal/obs is not a context package, so
// the same calls produce no findings there.
package obs

import (
	"net/http"
	"time"
)

func probe(url string) (*http.Response, error) {
	time.Sleep(time.Millisecond)
	return http.Get(url)
}
