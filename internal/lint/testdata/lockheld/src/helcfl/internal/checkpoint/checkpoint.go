// Package checkpoint is a corpus mirror of the durable-storage API: the
// same import path and names as the real WAL, so policy.BlockingCalls
// resolves identically.
package checkpoint

type Record struct {
	Type, Round, User int
	Payload           []byte
}

type WAL struct{}

func (w *WAL) Append(rec Record) error { return nil }
func (w *WAL) Reset() error            { return nil }

func WriteFile(path string, payload []byte) error { return nil }
func ReadFile(path string) ([]byte, error)        { return nil, nil }
