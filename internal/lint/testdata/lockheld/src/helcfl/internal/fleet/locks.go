package fleet

import (
	"errors"
	"net/http"
	"sync"
	"time"

	"helcfl/internal/checkpoint"
)

var errBoom = errors.New("boom")

type C struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	n    int
	buf  []byte
	path string
	wal  *checkpoint.WAL
	http *http.Client
}

// Approved shapes: straight-line critical sections, deferred unlocks,
// snapshot-then-write, and read locks.

func (c *C) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *C) deferredUnlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *C) closureUnlock() {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	c.n++
}

func (c *C) readUnderRLock() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// snapshotThenWrite is the approved durability shape: copy under the lock,
// fsync outside it.
func (c *C) snapshotThenWrite() error {
	c.mu.Lock()
	payload := append([]byte(nil), c.buf...)
	c.mu.Unlock()
	return checkpoint.WriteFile(c.path, payload)
}

// Violations: blocking operations while the lock is held.

func (c *C) appendUnderLock(rec checkpoint.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.Append(rec) // want "checkpoint.WAL.Append fsyncs a WAL record to disk while c.mu.Lock\(\) is held"
}

func (c *C) fetchUnderLock(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.http.Do(req) // want "http.Client.Do does an HTTP round-trip while c.mu.Lock\(\) is held"
}

func (c *C) napUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep sleeps while c.mu.Lock\(\) is held"
	c.mu.Unlock()
}

func (c *C) sendUnderLock(ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "channel send blocks until received while c.mu.Lock\(\) is held"
	c.mu.Unlock()
}

func (c *C) recvUnderLock(ch chan int) int {
	c.mu.Lock()
	v := <-ch // want "channel receive blocks until sent while c.mu.Lock\(\) is held"
	c.mu.Unlock()
	return v
}

func (c *C) selectUnderLock(ch chan int, done chan struct{}) {
	c.mu.Lock()
	select { // want "select blocks on channel operations while c.mu.Lock\(\) is held"
	case <-ch:
	case <-done:
	}
	c.mu.Unlock()
}

func (c *C) waitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait waits for goroutines while c.mu.Lock\(\) is held"
	c.mu.Unlock()
}

func (c *C) sleepUnderRLock() {
	c.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep sleeps while c.rw.RLock\(\) is held"
	c.rw.RUnlock()
}

// flushLocked pins the *Locked naming convention: the body runs entirely
// under the caller's lock.
func (c *C) flushLocked() error {
	return checkpoint.WriteFile(c.path, c.buf) // want "checkpoint.WriteFile writes and fsyncs a snapshot while flushLocked runs under the caller's lock"
}

// Violations: the lock escapes on a path.

func (c *C) leaky(fail bool) error {
	c.mu.Lock() // want "c.mu.Lock\(\) is not released on all paths \(return"
	if fail {
		return errBoom
	}
	c.mu.Unlock()
	return nil
}

func (c *C) heldOffEnd() {
	c.mu.Lock() // want "c.mu.Lock\(\) is not released on all paths \(function end"
	c.n++
}

// allowedAppend pins the escape hatch: WAL-before-ack sites justify the
// blocking append under the lock.
func (c *C) allowedAppend(rec checkpoint.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//helcfl:allow(lockheld) the record must be durable before the lock releases
	return c.wal.Append(rec)
}
