package lint_test

import (
	"testing"

	"helcfl/internal/lint"
)

// TestModuleLintsClean is the suite's own gate on the live tree: the whole
// module must produce zero unsuppressed findings, and every suppression
// must carry a reason. A regression anywhere in the repo — a stray
// time.Now() in the deterministic core, a missed fsync in checkpoint —
// fails this test, not just `make lint`.
func TestModuleLintsClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("find module root: %v", err)
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("module loaded zero packages")
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range lint.Unsuppressed(findings) {
		t.Errorf("unsuppressed finding: %s", f)
	}
	for _, f := range findings {
		if f.Suppressed && f.Reason == "" {
			t.Errorf("suppressed finding without a reason: %s", f)
		}
	}
}
