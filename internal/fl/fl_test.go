package fl

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/nn"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

// testEnv builds a small, fast FL environment: 8 users, synthetic 4-class
// data, a logistic model.
type testEnv struct {
	devs  []*device.Device
	ch    wireless.Channel
	users []*dataset.Dataset
	test  *dataset.Dataset
	spec  nn.ModelSpec
}

func newTestEnv(t *testing.T, seed int64, users int) *testEnv {
	t.Helper()
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 160, TestN: 80, Noise: 0.6, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed))
	cfg := device.DefaultCatalogConfig()
	cfg.Q = users
	devs := device.NewCatalog(cfg, rng)
	part := dataset.PartitionIID(synth.Train, users, rng)
	ud := dataset.UserDatasets(synth.Train, part)
	for q, d := range devs {
		d.NumSamples = ud[q].N()
	}
	return &testEnv{
		devs:  devs,
		ch:    wireless.DefaultChannel(),
		users: ud,
		test:  synth.Test,
		spec:  nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4},
	}
}

// allUsersPlanner selects every user at max frequency — the degenerate
// planner that makes FL equal centralized GD (Eq. 19).
func allUsersPlanner(devs []*device.Device) Planner {
	return &Composed{
		Label:   "all",
		Devices: devs,
		Select: func(j int) []int {
			sel := make([]int, len(devs))
			for i := range sel {
				sel[i] = i
			}
			return sel
		},
		Frequencies: sim.MaxFrequencies,
	}
}

func baseConfig(env *testEnv, planner Planner) Config {
	return Config{
		Spec:       env.spec,
		Devices:    env.devs,
		Channel:    env.ch,
		UserData:   env.users,
		Test:       env.test,
		Planner:    planner,
		LR:         0.3,
		LocalSteps: 1,
		MaxRounds:  20,
		EvalEvery:  1,
		Seed:       42,
	}
}

func TestFedAvgWeightedMean(t *testing.T) {
	got := FedAvg([][]float64{{1, 2}, {4, 8}}, []int{1, 3})
	want := []float64{(1 + 3*4) / 4.0, (2 + 3*8) / 4.0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("FedAvg[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFedAvgValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":           func() { FedAvg(nil, nil) },
		"weight mismatch": func() { FedAvg([][]float64{{1}}, []int{1, 2}) },
		"length mismatch": func() { FedAvg([][]float64{{1}, {1, 2}}, []int{1, 1}) },
		"zero weight":     func() { FedAvg([][]float64{{1}, {2}}, []int{1, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// The paper's Eq. (19): one FL round over selected users with one GD step
// each, aggregated by FedAvg, is exactly one centralized GD step on the
// union of their data. This is the identity HELCFL's analysis rests on.
func TestFedAvgEquivalentToCentralizedGD(t *testing.T) {
	env := newTestEnv(t, 1, 4)
	rng := rand.New(rand.NewSource(7))
	global := env.spec.Build(rng)
	globalFlat := global.GetFlatParams()
	lr := 0.2

	// Federated: each user takes one GD step from the same global params.
	uploads := make([][]float64, len(env.users))
	weights := make([]int, len(env.users))
	for q, d := range env.users {
		c := NewClient(q, d, global.Clone(), true)
		flat, _ := c.LocalUpdate(globalFlat, lr, 1)
		uploads[q] = flat
		weights[q] = d.N()
	}
	fedFlat := FedAvg(uploads, weights)

	// Centralized: one GD step on the union of the users' data. env.users
	// was produced by an IID partition of synth.Train covering every sample
	// exactly once, so the union equals the full train set up to ordering,
	// and full-batch GD is order-invariant.
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 160, TestN: 80, Noise: 0.6, Seed: 1,
	})
	central := global.Clone()
	cc := NewClient(0, synth.Train, central, true)
	centralFlat, _ := cc.LocalUpdate(globalFlat, lr, 1)

	if len(fedFlat) != len(centralFlat) {
		t.Fatal("parameter vectors misaligned")
	}
	for i := range fedFlat {
		if math.Abs(fedFlat[i]-centralFlat[i]) > 1e-9 {
			t.Fatalf("Eq.19 violated at param %d: fed %g vs central %g", i, fedFlat[i], centralFlat[i])
		}
	}
}

func TestRunTrainsToUsefulAccuracy(t *testing.T) {
	env := newTestEnv(t, 2, 8)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 60 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.BestAccuracy < 0.6 {
		t.Fatalf("best accuracy = %g, training is broken", res.BestAccuracy)
	}
	first := res.Records[0]
	last := res.Records[len(res.Records)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Fatalf("train loss did not decrease: %g → %g", first.TrainLoss, last.TrainLoss)
	}
}

func TestRunRecordsAccumulate(t *testing.T) {
	env := newTestEnv(t, 3, 6)
	res, err := Run(baseConfig(env, allUsersPlanner(env.devs)))
	if err != nil {
		t.Fatal(err)
	}
	var time, energy float64
	for i, r := range res.Records {
		if r.Round != i {
			t.Fatalf("round index %d at position %d", r.Round, i)
		}
		time += r.Delay
		energy += r.Energy
		if math.Abs(r.CumTime-time) > 1e-9 || math.Abs(r.CumEnergy-energy) > 1e-9 {
			t.Fatalf("round %d: cumulative accounting drifted", i)
		}
		if r.Delay <= 0 || r.Energy <= 0 {
			t.Fatalf("round %d: non-positive costs", i)
		}
	}
	if math.Abs(res.TotalTime-time) > 1e-9 || math.Abs(res.TotalEnergy-energy) > 1e-9 {
		t.Fatal("result totals disagree with records")
	}
}

func TestRunDeadlineStops(t *testing.T) {
	env := newTestEnv(t, 4, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 1000
	// One round costs ≥ the fastest user's compute+upload; a tiny deadline
	// must stop the run almost immediately.
	cfg.DeadlineSec = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedByDeadline {
		t.Fatal("deadline exit did not fire")
	}
	if len(res.Records) == 1000 {
		t.Fatal("run ignored the deadline")
	}
	last := res.Records[len(res.Records)-1]
	if !last.Evaluated {
		t.Fatal("final round must be evaluated on early exit")
	}
}

func TestRunTargetAccuracyStops(t *testing.T) {
	env := newTestEnv(t, 5, 8)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 200
	cfg.TargetAccuracy = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatal("target accuracy never reached")
	}
	if len(res.Records) >= 200 {
		t.Fatal("run did not stop at target")
	}
}

func TestRunEvalEvery(t *testing.T) {
	env := newTestEnv(t, 6, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 10
	cfg.EvalEvery = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		wantEval := r.Round%3 == 0 || r.Round == 9
		if r.Evaluated != wantEval {
			t.Fatalf("round %d evaluated=%v, want %v", r.Round, r.Evaluated, wantEval)
		}
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	env1 := newTestEnv(t, 7, 6)
	r1, err := Run(baseConfig(env1, allUsersPlanner(env1.devs)))
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 7, 6)
	r2, err := Run(baseConfig(env2, allUsersPlanner(env2.devs)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAccuracy != r2.FinalAccuracy || r1.TotalEnergy != r2.TotalEnergy {
		t.Fatal("same seeds must reproduce the run exactly")
	}
}

func TestRunQuantizedUploadsClose(t *testing.T) {
	env := newTestEnv(t, 8, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 15
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 8, 6)
	cfg2 := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg2.MaxRounds = 15
	cfg2.QuantizeUploads = true
	quant, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.FinalAccuracy-quant.FinalAccuracy) > 0.1 {
		t.Fatalf("float32 uploads changed accuracy too much: %g vs %g",
			exact.FinalAccuracy, quant.FinalAccuracy)
	}
}

func TestRunConfigValidation(t *testing.T) {
	env := newTestEnv(t, 9, 4)
	good := baseConfig(env, allUsersPlanner(env.devs))
	for name, mutate := range map[string]func(*Config){
		"no devices":  func(c *Config) { c.Devices = nil; c.UserData = nil },
		"no planner":  func(c *Config) { c.Planner = nil },
		"bad lr":      func(c *Config) { c.LR = 0 },
		"bad steps":   func(c *Config) { c.LocalSteps = 0 },
		"bad rounds":  func(c *Config) { c.MaxRounds = 0 },
		"no test":     func(c *Config) { c.Test = nil },
		"data/device": func(c *Config) { c.UserData = c.UserData[:2] },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: Run must fail", name)
		}
	}
}

func TestEvaluateMatchesManualAccuracy(t *testing.T) {
	env := newTestEnv(t, 10, 4)
	rng := rand.New(rand.NewSource(11))
	m := env.spec.Build(rng)
	loss, acc := Evaluate(m, env.test, true)
	logits := m.Forward(env.test.FlatX(), false)
	wantAcc := nn.Accuracy(logits, env.test.Labels)
	if math.Abs(acc-wantAcc) > 1e-12 {
		t.Fatalf("Evaluate accuracy %g, manual %g", acc, wantAcc)
	}
	if loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
}

func TestRunSLBasic(t *testing.T) {
	env := newTestEnv(t, 12, 6)
	res, err := RunSL(SLConfig{
		Spec:       env.spec,
		Devices:    env.devs,
		Channel:    env.ch,
		UserData:   env.users,
		Test:       env.test,
		Fraction:   0.5,
		LR:         0.3,
		LocalSteps: 1,
		MaxRounds:  30,
		EvalEvery:  5,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 30 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.TotalEnergy <= 0 || res.TotalTime <= 0 {
		t.Fatal("SL costs must be positive")
	}
	for _, r := range res.Records {
		if r.UploadEnergy != 0 {
			t.Fatal("SL must not spend communication energy")
		}
	}
	if res.BestAccuracy <= 0 {
		t.Fatal("SL never evaluated")
	}
}

// SL's defining weakness: with few local samples per user it caps below
// collaborative FL on the same budget.
func TestSLWorseThanFederated(t *testing.T) {
	env := newTestEnv(t, 13, 8)
	flCfg := baseConfig(env, allUsersPlanner(env.devs))
	flCfg.MaxRounds = 60
	flRes, err := Run(flCfg)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 13, 8)
	slRes, err := RunSL(SLConfig{
		Spec: env2.spec, Devices: env2.devs, Channel: env2.ch,
		UserData: env2.users, Test: env2.test,
		Fraction: 1.0, LR: 0.3, LocalSteps: 1, MaxRounds: 60, EvalEvery: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slRes.BestAccuracy >= flRes.BestAccuracy {
		t.Fatalf("SL (%g) should trail FL (%g)", slRes.BestAccuracy, flRes.BestAccuracy)
	}
}

func TestRunSLValidation(t *testing.T) {
	env := newTestEnv(t, 14, 4)
	good := SLConfig{
		Spec: env.spec, Devices: env.devs, Channel: env.ch,
		UserData: env.users, Test: env.test,
		Fraction: 0.5, LR: 0.1, LocalSteps: 1, MaxRounds: 5,
	}
	for name, mutate := range map[string]func(*SLConfig){
		"no devices":   func(c *SLConfig) { c.Devices = nil; c.UserData = nil },
		"bad fraction": func(c *SLConfig) { c.Fraction = 0 },
		"bad lr":       func(c *SLConfig) { c.LR = -1 },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := RunSL(cfg); err == nil {
			t.Fatalf("%s: RunSL must fail", name)
		}
	}
}

func TestComposedPlannerBoundsCheck(t *testing.T) {
	env := newTestEnv(t, 15, 3)
	p := &Composed{
		Label:       "bad",
		Devices:     env.devs,
		Select:      func(j int) []int { return []int{99} },
		Frequencies: sim.MaxFrequencies,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range selection")
		}
	}()
	p.PlanRound(0)
}

func TestClientRequiresData(t *testing.T) {
	env := newTestEnv(t, 16, 3)
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil data")
		}
	}()
	NewClient(0, nil, env.spec.Build(rng), true)
}
