package fl_test

import (
	"fmt"

	"helcfl/internal/fl"
)

// Eq. (18): FedAvg weights each upload by its dataset size.
func ExampleFedAvg() {
	uploads := [][]float64{
		{1.0, 0.0}, // user with 10 samples
		{0.0, 1.0}, // user with 30 samples
	}
	avg := fl.FedAvg(uploads, []int{10, 30})
	fmt.Printf("%.2f %.2f\n", avg[0], avg[1])
	// Output:
	// 0.25 0.75
}
