package fl

import (
	"fmt"
	"math/rand"

	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/nn"
	"helcfl/internal/sim"
	"helcfl/internal/wireless"
)

// SLConfig configures the separated-learning baseline (the paper's "SL"
// [4]): every user trains its own persistent model on its own data only —
// no uploads, no aggregation. For cost parity with the FL schemes, the same
// random fraction C of users performs one local update per round.
type SLConfig struct {
	Spec       nn.ModelSpec
	Devices    []*device.Device
	Channel    wireless.Channel
	UserData   []*dataset.Dataset
	Test       *dataset.Dataset
	Fraction   float64
	LR         float64
	LocalSteps int
	MaxRounds  int
	EvalEvery  int
	// EvalUsers caps how many user models are averaged per evaluation
	// (deterministic prefix after a seeded shuffle); 0 means all users.
	// Reported SL accuracy is the mean test accuracy across those models.
	EvalUsers int
	Seed      int64
}

// SLResult mirrors Result for the separated-learning engine.
type SLResult struct {
	Records                     []RoundRecord
	FinalAccuracy, BestAccuracy float64
	TotalTime, TotalEnergy      float64
}

// RunSL executes separated learning. Selected users run at maximum
// frequency (there is no slack to reclaim: with no uploads, the round ends
// when the slowest selected user finishes computing). Round delay is
// max T_cal; round energy is Σ E_cal; no communication occurs.
func RunSL(cfg SLConfig) (*SLResult, error) {
	switch {
	case len(cfg.Devices) == 0:
		return nil, fmt.Errorf("fl: SL with no devices")
	case len(cfg.UserData) != len(cfg.Devices):
		return nil, fmt.Errorf("fl: SL %d datasets for %d devices", len(cfg.UserData), len(cfg.Devices))
	case cfg.Fraction <= 0 || cfg.Fraction > 1:
		return nil, fmt.Errorf("fl: SL fraction %g outside (0,1]", cfg.Fraction)
	case cfg.LR <= 0 || cfg.LocalSteps <= 0 || cfg.MaxRounds <= 0:
		return nil, fmt.Errorf("fl: SL bad training parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	flatten := cfg.Spec.FlattensInput()
	clients := make([]*Client, len(cfg.Devices))
	for q, d := range cfg.Devices {
		// Skip-if-equal, like the FL engine: cached-environment fleets are
		// shared across concurrent cells and must stay write-free here.
		if n := cfg.UserData[q].N(); d.NumSamples != n {
			d.NumSamples = n
		}
		clients[q] = NewClient(q, cfg.UserData[q], cfg.Spec.Build(rng), flatten)
	}

	// Deterministic evaluation panel.
	evalSet := rng.Perm(len(clients))
	if cfg.EvalUsers > 0 && cfg.EvalUsers < len(evalSet) {
		evalSet = evalSet[:cfg.EvalUsers]
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	n := int(float64(len(cfg.Devices)) * cfg.Fraction)
	if n < 1 {
		n = 1
	}

	res := &SLResult{}
	cumTime, cumEnergy := 0.0, 0.0
	for j := 0; j < cfg.MaxRounds; j++ {
		sel := rng.Perm(len(cfg.Devices))[:n]
		lossSum := 0.0
		var maxDelay, energy float64
		for _, q := range sel {
			lossSum += clients[q].TrainOwn(cfg.LR, cfg.LocalSteps)
			d := cfg.Devices[q]
			delay := float64(cfg.LocalSteps) * d.ComputeDelayAtMax()
			if delay > maxDelay {
				maxDelay = delay
			}
			energy += float64(cfg.LocalSteps) * d.ComputeEnergy(d.FMax)
		}
		cumTime += maxDelay
		cumEnergy += energy
		rec := RoundRecord{
			Round:         j,
			Selected:      sel,
			Freqs:         sim.MaxFrequencies(pick(cfg.Devices, sel)),
			Delay:         maxDelay,
			Energy:        energy,
			ComputeEnergy: energy,
			CumTime:       cumTime,
			CumEnergy:     cumEnergy,
			TrainLoss:     lossSum / float64(n),
		}
		if j%evalEvery == 0 || j == cfg.MaxRounds-1 {
			accSum := 0.0
			for _, q := range evalSet {
				_, a := Evaluate(clients[q].Model(), cfg.Test, flatten)
				accSum += a
			}
			rec.Evaluated = true
			rec.TestAccuracy = accSum / float64(len(evalSet))
			if rec.TestAccuracy > res.BestAccuracy {
				res.BestAccuracy = rec.TestAccuracy
			}
			res.FinalAccuracy = rec.TestAccuracy
		}
		res.Records = append(res.Records, rec)
	}
	res.TotalTime = cumTime
	res.TotalEnergy = cumEnergy
	return res, nil
}

// pick gathers devices at the given indices.
func pick(devs []*device.Device, idx []int) []*device.Device {
	out := make([]*device.Device, len(idx))
	for i, q := range idx {
		out[i] = devs[q]
	}
	return out
}
