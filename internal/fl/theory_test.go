package fl

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
)

// The Eq. (19) identity holds for exactly one local GD step. With more
// local steps FedAvg and centralized GD genuinely diverge (client drift) —
// this negative test pins the boundary of the paper's theoretical argument.
func TestEq19BreaksWithMultipleLocalSteps(t *testing.T) {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 120, TestN: 40, Noise: 0.6, Seed: 42,
	})
	rng := rand.New(rand.NewSource(1))
	part := dataset.PartitionNonIID(synth.Train, 4, 8, 2, rng)
	users := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4}
	global := spec.Build(rand.New(rand.NewSource(2)))
	globalFlat := global.GetFlatParams()
	lr := 0.2

	fedAvgAfter := func(steps int) []float64 {
		uploads := make([][]float64, len(users))
		weights := make([]int, len(users))
		for q, d := range users {
			c := NewClient(q, d, global.Clone(), true)
			flat, _ := c.LocalUpdate(globalFlat, lr, steps)
			uploads[q] = flat
			weights[q] = d.N()
		}
		return FedAvg(uploads, weights)
	}
	centralAfter := func(steps int) []float64 {
		c := NewClient(0, synth.Train, global.Clone(), true)
		flat, _ := c.LocalUpdate(globalFlat, lr, steps)
		return flat
	}

	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}

	// One step: identity holds to numerical precision.
	if d := dist(fedAvgAfter(1), centralAfter(1)); d > 1e-9 {
		t.Fatalf("Eq.19 with 1 step: distance %g, want ≈0", d)
	}
	// Three steps: under a Non-IID partition the trajectories split.
	if d := dist(fedAvgAfter(3), centralAfter(3)); d < 1e-6 {
		t.Fatalf("3 local steps should diverge from centralized GD, distance %g", d)
	}
}

// End-to-end FL with the SqueezeNet-style CNN: the convolutional path,
// parameter flattening, and FedAvg all compose. Slow, so scaled down and
// skipped in -short runs.
func TestRunWithSqueezeNetMini(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN federated round is slow")
	}
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 3, H: 8, W: 8, TrainN: 80, TestN: 40, Noise: 0.5, Seed: 7,
	})
	rng := rand.New(rand.NewSource(3))
	env := newTestEnv(t, 40, 4)
	part := dataset.PartitionIID(synth.Train, 4, rng)
	users := dataset.UserDatasets(synth.Train, part)
	for q, d := range env.devs {
		d.NumSamples = users[q].N()
	}
	res, err := Run(Config{
		Spec:       nn.ModelSpec{Kind: "squeezenet-mini", InC: 3, H: 8, W: 8, Classes: 4},
		Devices:    env.devs,
		Channel:    env.ch,
		UserData:   users,
		Test:       synth.Test,
		Planner:    allUsersPlanner(env.devs),
		LR:         0.1,
		LocalSteps: 1,
		MaxRounds:  8,
		EvalEvery:  4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy <= 0.1 {
		t.Fatalf("CNN FL below chance: %g", res.BestAccuracy)
	}
	if res.ModelBits <= 0 {
		t.Fatal("CNN model bits unset")
	}
	first := res.Records[0].TrainLoss
	last := res.Records[len(res.Records)-1].TrainLoss
	if last >= first {
		t.Fatalf("CNN loss did not decrease: %g → %g", first, last)
	}
}
