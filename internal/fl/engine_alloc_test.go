package fl

import (
	"math"
	"testing"

	"helcfl/internal/sim"
	"helcfl/internal/tensor"
)

// fixedPlanner returns the same preallocated cohort every round, so the
// planner contributes zero allocations to the measured Step. (Production
// planners may allocate their decision slices; that cost is theirs, not the
// engine's.)
type fixedPlanner struct {
	sel   []int
	freqs []float64
}

func (p *fixedPlanner) Name() string                       { return "fixed" }
func (p *fixedPlanner) PlanRound(j int) ([]int, []float64) { return p.sel, p.freqs }

// newFixedPlanner selects every device at FMax.
func newFixedPlanner(env *testEnv) *fixedPlanner {
	sel := make([]int, len(env.devs))
	for i := range sel {
		sel[i] = i
	}
	return &fixedPlanner{sel: sel, freqs: sim.MaxFrequencies(env.devs)}
}

// TestEngineStepZeroAllocs pins zero steady-state heap allocations for a
// full engine round — selection, sim, broadcast, local updates, FedAvg —
// with the observability and eval paths off (nil Sink/Trace, EvalEvery
// beyond the horizon), exactly the configuration the performance doc
// promises is allocation-free. Warm-up rounds grow the engine scratch and
// every client's layer scratch first.
func TestEngineStepZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	env := newTestEnv(t, 7, 6)
	cfg := baseConfig(env, newFixedPlanner(env))
	cfg.MaxRounds = 1000
	cfg.EvalEvery = 1 << 30 // only round 0 evaluates
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm-up: grows all scratch, runs the round-0 eval
		if ok, err := e.Step(); !ok || err != nil {
			t.Fatalf("warm-up step %d: ok=%v err=%v", i, ok, err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if ok, err := e.Step(); !ok || err != nil {
			t.Fatalf("measured step: ok=%v err=%v", ok, err)
		}
	})
	if n != 0 {
		t.Errorf("steady-state engine Step allocates %v times, want 0", n)
	}
}

// TestEngineStepZeroAllocsQuantized repeats the gate with both wire-format
// knobs on: broadcast and upload float32 round-trips must reuse the
// engine's quantization buffers.
func TestEngineStepZeroAllocsQuantized(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	env := newTestEnv(t, 8, 5)
	cfg := baseConfig(env, newFixedPlanner(env))
	cfg.MaxRounds = 1000
	cfg.EvalEvery = 1 << 30
	cfg.QuantizeBroadcast = true
	cfg.QuantizeUploads = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ok, err := e.Step(); !ok || err != nil {
			t.Fatalf("warm-up step %d: ok=%v err=%v", i, ok, err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if ok, err := e.Step(); !ok || err != nil {
			t.Fatalf("measured step: ok=%v err=%v", ok, err)
		}
	})
	if n != 0 {
		t.Errorf("quantized engine Step allocates %v times, want 0", n)
	}
}

// TestEngineWorkerPoolMatchesInline pins that the persistent worker pool
// produces the bit-identical training trajectory to the inline serial path:
// same records, same final parameters, for several worker counts. Run under
// -race this also proves the pool's round synchronization is sound.
func TestEngineWorkerPoolMatchesInline(t *testing.T) {
	runCampaign := func(workers int) *Result {
		prev := tensor.SetWorkers(workers)
		defer tensor.SetWorkers(prev)
		env := newTestEnv(t, 9, 8)
		cfg := baseConfig(env, allUsersPlanner(env.devs))
		cfg.MaxRounds = 6
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	sameRecords := func(got, want []RoundRecord) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("executed %d rounds, want %d", len(got), len(want))
		}
		f64 := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
		for i := range got {
			g, w := got[i], want[i]
			if !f64(g.TrainLoss, w.TrainLoss) || !f64(g.Delay, w.Delay) ||
				!f64(g.Energy, w.Energy) || !f64(g.CumTime, w.CumTime) ||
				!f64(g.CumEnergy, w.CumEnergy) || !f64(g.TestLoss, w.TestLoss) ||
				!f64(g.TestAccuracy, w.TestAccuracy) || g.Failed != w.Failed {
				t.Fatalf("round %d diverges: got %+v want %+v", i, g, w)
			}
		}
	}

	want := runCampaign(1)
	wantFlat := want.Model.GetFlatParams()
	for _, w := range []int{2, 5} {
		got := runCampaign(w)
		sameRecords(got.Records, want.Records)
		gotFlat := got.Model.GetFlatParams()
		for i := range wantFlat {
			if math.Float64bits(gotFlat[i]) != math.Float64bits(wantFlat[i]) {
				t.Fatalf("workers=%d: final param %d = %g, want %g", w, i, gotFlat[i], wantFlat[i])
			}
		}
	}
}
