package fl

import "testing"

func TestConvergenceExitFires(t *testing.T) {
	env := newTestEnv(t, 50, 8)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 400
	cfg.ConvergePatience = 5
	cfg.ConvergeDelta = 1e-4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loss plateau never detected in 400 rounds")
	}
	if len(res.Records) >= 400 {
		t.Fatal("run did not stop at convergence")
	}
	// The exit is not premature: the model is already trained well.
	if res.BestAccuracy < 0.6 {
		t.Fatalf("converged at accuracy %g, exit premature", res.BestAccuracy)
	}
}

func TestConvergenceDisabledByDefault(t *testing.T) {
	env := newTestEnv(t, 51, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("convergence exit must be off without patience")
	}
	if len(res.Records) != 30 {
		t.Fatalf("run stopped early: %d rounds", len(res.Records))
	}
}

func TestConvergencePatienceRespectsDelta(t *testing.T) {
	env := newTestEnv(t, 52, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 200
	cfg.ConvergePatience = 3
	// A huge delta means "never improved enough": the run should stop after
	// the first patience-many evaluations.
	cfg.ConvergeDelta = 1e9
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("huge delta must trip patience immediately")
	}
	if len(res.Records) > 5 {
		t.Fatalf("stopped after %d rounds, want ≈patience", len(res.Records))
	}
}
