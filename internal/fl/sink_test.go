package fl

import (
	"math"
	"testing"

	"helcfl/internal/obs"
)

// recordingSink captures the full event stream for assertions.
type recordingSink struct {
	obs.NopSink
	runStarts  []obs.RunStartEvent
	roundStart int
	selections []obs.SelectionEvent
	freqs      []obs.FrequencyEvent
	locals     []obs.LocalUpdateEvent
	uploads    []obs.UploadEvent
	dropouts   []obs.DropoutEvent
	batteries  []obs.BatteryEvent
	aggregates []obs.AggregateEvent
	roundEnds  []obs.RoundEndEvent
	runEnds    []obs.RunEndEvent
}

func (r *recordingSink) OnRunStart(ev obs.RunStartEvent) { r.runStarts = append(r.runStarts, ev) }
func (r *recordingSink) OnRoundStart(obs.RoundStartEvent) {
	r.roundStart++
}
func (r *recordingSink) OnSelection(ev obs.SelectionEvent) { r.selections = append(r.selections, ev) }
func (r *recordingSink) OnFrequency(ev obs.FrequencyEvent) { r.freqs = append(r.freqs, ev) }
func (r *recordingSink) OnLocalUpdate(ev obs.LocalUpdateEvent) {
	r.locals = append(r.locals, ev)
}
func (r *recordingSink) OnUpload(ev obs.UploadEvent)   { r.uploads = append(r.uploads, ev) }
func (r *recordingSink) OnDropout(ev obs.DropoutEvent) { r.dropouts = append(r.dropouts, ev) }
func (r *recordingSink) OnBattery(ev obs.BatteryEvent) { r.batteries = append(r.batteries, ev) }
func (r *recordingSink) OnAggregate(ev obs.AggregateEvent) {
	r.aggregates = append(r.aggregates, ev)
}
func (r *recordingSink) OnRoundEnd(ev obs.RoundEndEvent) { r.roundEnds = append(r.roundEnds, ev) }
func (r *recordingSink) OnRunEnd(ev obs.RunEndEvent)     { r.runEnds = append(r.runEnds, ev) }

func TestSinkReceivesConsistentEventStream(t *testing.T) {
	env := newTestEnv(t, 21, 6)
	sink := &recordingSink{}
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 4
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(sink.runStarts) != 1 || len(sink.runEnds) != 1 {
		t.Fatalf("run events = %d/%d", len(sink.runStarts), len(sink.runEnds))
	}
	rs := sink.runStarts[0]
	if rs.Scheme != "all" || rs.Users != 6 || rs.MaxRounds != 4 || rs.ModelBits != res.ModelBits {
		t.Fatalf("run start = %+v", rs)
	}
	re := sink.runEnds[0]
	if re.Rounds != len(res.Records) || re.TotalTimeSec != res.TotalTime || re.BestAccuracy != res.BestAccuracy {
		t.Fatalf("run end = %+v", re)
	}

	rounds := len(res.Records)
	if sink.roundStart != rounds || len(sink.selections) != rounds ||
		len(sink.freqs) != rounds || len(sink.roundEnds) != rounds ||
		len(sink.aggregates) != rounds {
		t.Fatalf("per-round event counts: starts=%d sel=%d freq=%d ends=%d agg=%d, want %d each",
			sink.roundStart, len(sink.selections), len(sink.freqs),
			len(sink.roundEnds), len(sink.aggregates), rounds)
	}
	// Every selected user produced one local-update and one upload span.
	if len(sink.locals) != rounds*6 || len(sink.uploads) != rounds*6 {
		t.Fatalf("span counts: locals=%d uploads=%d, want %d", len(sink.locals), len(sink.uploads), rounds*6)
	}
	for _, ev := range sink.locals {
		if ev.SimSec <= 0 || ev.EnergyJ <= 0 || ev.WallSec <= 0 || ev.FreqHz <= 0 {
			t.Fatalf("degenerate local update event %+v", ev)
		}
		if math.IsNaN(ev.Loss) {
			t.Fatalf("NaN loss in %+v", ev)
		}
	}
	for _, ev := range sink.uploads {
		if ev.SimSec <= 0 || ev.EndSec < ev.StartSec || ev.WaitSec < 0 {
			t.Fatalf("degenerate upload event %+v", ev)
		}
	}
	// Round-end events mirror the result records exactly.
	for i, rec := range res.Records {
		ev := sink.roundEnds[i]
		if ev.Round != rec.Round || ev.DelaySec != rec.Delay || ev.EnergyJ != rec.Energy ||
			ev.SlackSec != rec.Slack || ev.CumTimeSec != rec.CumTime ||
			ev.TrainLoss != rec.TrainLoss || ev.Evaluated != rec.Evaluated ||
			ev.TestAccuracy != rec.TestAccuracy {
			t.Fatalf("round %d: event %+v != record %+v", i, ev, rec)
		}
	}
	if len(sink.dropouts) != 0 || len(sink.batteries) != 0 {
		t.Fatalf("unexpected fault events: %d dropouts, %d batteries", len(sink.dropouts), len(sink.batteries))
	}
}

func TestSinkReportsDropoutsAndBatteries(t *testing.T) {
	// Probe one round's per-user energy, then grant ~3 rounds of battery so
	// shutdowns are guaranteed within the budget.
	probeEnv := newTestEnv(t, 22, 6)
	probe := baseConfig(probeEnv, allUsersPlanner(probeEnv.devs))
	probe.MaxRounds = 1
	one, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	perUser := one.Records[0].Energy / 6

	env := newTestEnv(t, 22, 6)
	sink := &recordingSink{}
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 12
	cfg.DropoutProb = 0.5
	cfg.BatteryCapacityJ = 3 * perUser
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalFailed := 0
	for _, rec := range res.Records {
		totalFailed += rec.Failed
	}
	if len(sink.dropouts) != totalFailed {
		t.Fatalf("dropout events = %d, records say %d", len(sink.dropouts), totalFailed)
	}
	if totalFailed == 0 {
		t.Fatal("fault injection produced no dropouts; tighten the test setup")
	}
	last := res.Records[len(res.Records)-1]
	dead := 6 - last.AliveDevices
	if len(sink.batteries) != dead {
		t.Fatalf("battery events = %d, final alive count implies %d", len(sink.batteries), dead)
	}
	if dead == 0 {
		t.Fatal("battery cap produced no shutdowns; tighten the test setup")
	}
	for _, ev := range sink.batteries {
		if ev.SpentJ < cfg.BatteryCapacityJ {
			t.Fatalf("battery event below capacity: %+v", ev)
		}
	}
}

// TestSinkRunMatchesNilSinkRun verifies observability is pure measurement:
// wiring a sink must not change a single training outcome.
func TestSinkRunMatchesNilSinkRun(t *testing.T) {
	run := func(sink obs.EventSink) *Result {
		env := newTestEnv(t, 23, 6)
		cfg := baseConfig(env, allUsersPlanner(env.devs))
		cfg.MaxRounds = 5
		cfg.DropoutProb = 0.3
		cfg.Sink = sink
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(&recordingSink{})
	if len(plain.Records) != len(observed.Records) {
		t.Fatalf("round counts differ: %d vs %d", len(plain.Records), len(observed.Records))
	}
	for i := range plain.Records {
		a, b := plain.Records[i], observed.Records[i]
		if a.Delay != b.Delay || a.Energy != b.Energy || a.TrainLoss != b.TrainLoss ||
			a.Failed != b.Failed || a.TestAccuracy != b.TestAccuracy {
			t.Fatalf("round %d diverged with sink attached: %+v vs %+v", i, a, b)
		}
	}
	if plain.FinalAccuracy != observed.FinalAccuracy {
		t.Fatalf("final accuracy diverged: %g vs %g", plain.FinalAccuracy, observed.FinalAccuracy)
	}
}

func TestMetricsSinkEndToEnd(t *testing.T) {
	env := newTestEnv(t, 24, 6)
	reg := obs.NewRegistry()
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 3
	cfg.Sink = obs.NewMetricsSink(reg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("helcfl_rounds_total", "").Value(); got != float64(len(res.Records)) {
		t.Fatalf("rounds_total = %g, want %d", got, len(res.Records))
	}
	var cum float64
	for _, rec := range res.Records {
		cum += rec.ComputeEnergy
	}
	vec := reg.CounterVec("helcfl_energy_joules_total", "", "kind")
	if got := vec.With("compute").Value(); math.Abs(got-cum) > 1e-9 {
		t.Fatalf("compute energy = %g, want %g", got, cum)
	}
	// Every user was selected every round.
	sel := reg.CounterVec("helcfl_selection_count", "", "user")
	if got := sel.With("0").Value(); got != float64(len(res.Records)) {
		t.Fatalf("selection count = %g", got)
	}
}
