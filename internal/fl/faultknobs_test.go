package fl

import (
	"strings"
	"testing"
)

// Satellite: table-driven property tests for the Config fault knobs —
// DropoutProb boundaries, BatteryCapacityJ interplay with partial rounds,
// and the invariant that dead or dropped users never contribute to the
// FedAvg aggregation.

func TestValidateFaultKnobBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" means valid
	}{
		{"dropout zero", func(c *Config) { c.DropoutProb = 0 }, ""},
		{"dropout half", func(c *Config) { c.DropoutProb = 0.5 }, ""},
		{"dropout near one", func(c *Config) { c.DropoutProb = 0.999 }, ""},
		{"dropout negative", func(c *Config) { c.DropoutProb = -0.1 }, "dropout"},
		{"dropout exactly one", func(c *Config) { c.DropoutProb = 1.0 }, "dropout"},
		{"dropout above one", func(c *Config) { c.DropoutProb = 1.5 }, "dropout"},
		{"battery disabled", func(c *Config) { c.BatteryCapacityJ = 0 }, ""},
		{"battery tiny", func(c *Config) { c.BatteryCapacityJ = 1e-9 }, ""},
		{"both faults", func(c *Config) { c.DropoutProb = 0.999; c.BatteryCapacityJ = 1 }, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := newTestEnv(t, 50, 4)
			cfg := baseConfig(env, allUsersPlanner(env.devs))
			tc.mutate(&cfg)
			err := cfg.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case tc.wantErr != "" && err == nil:
				t.Fatal("Validate() = nil, want error")
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestDroppedUsersExcludedFromAggregation pins the dropout invariant through
// the event stream: every round's aggregate covers exactly the selected
// users minus the dropouts, every dropout names a selected user, and the
// total dropout-event count equals the summed Failed counters.
func TestDroppedUsersExcludedFromAggregation(t *testing.T) {
	env := newTestEnv(t, 51, 6)
	sink := &recordingSink{}
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 30
	cfg.DropoutProb = 0.4
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	selByRound := map[int]map[int]bool{}
	for _, ev := range sink.selections {
		set := map[int]bool{}
		for _, q := range ev.Selected {
			set[q] = true
		}
		selByRound[ev.Round] = set
	}
	dropsByRound := map[int]int{}
	for _, ev := range sink.dropouts {
		if !selByRound[ev.Round][ev.User] {
			t.Fatalf("dropout for unselected user %d in round %d", ev.User, ev.Round)
		}
		dropsByRound[ev.Round]++
	}
	// Rounds where every upload is lost emit no aggregate at all, so index
	// the aggregates that did happen by round.
	aggByRound := map[int]obsAggregate{}
	for _, ev := range sink.aggregates {
		aggByRound[ev.Round] = obsAggregate{uploads: ev.Uploads, failed: ev.Failed}
	}
	totalFailed := 0
	for _, rec := range res.Records {
		totalFailed += rec.Failed
		selCount := len(rec.Selected)
		if agg, ok := aggByRound[rec.Round]; ok {
			if agg.uploads+agg.failed != selCount {
				t.Fatalf("round %d: uploads %d + failed %d != selected %d",
					rec.Round, agg.uploads, agg.failed, selCount)
			}
			if agg.failed != dropsByRound[rec.Round] {
				t.Fatalf("round %d: aggregate failed %d != dropout events %d",
					rec.Round, agg.failed, dropsByRound[rec.Round])
			}
		} else if rec.Failed != selCount {
			t.Fatalf("round %d: no aggregate but only %d/%d failed", rec.Round, rec.Failed, selCount)
		}
	}
	if len(sink.dropouts) != totalFailed {
		t.Fatalf("dropout events %d != summed Failed %d", len(sink.dropouts), totalFailed)
	}
	if totalFailed == 0 {
		t.Fatal("p=0.4 over 30 rounds produced no dropouts")
	}
}

type obsAggregate struct{ uploads, failed int }

// TestDropoutNearOneStillRuns: p=0.999 is the legal extreme — most rounds
// lose every upload and skip aggregation entirely, but the run completes
// with the invariants intact.
func TestDropoutNearOneStillRuns(t *testing.T) {
	env := newTestEnv(t, 52, 5)
	sink := &recordingSink{}
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 15
	cfg.DropoutProb = 0.999
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 15 {
		t.Fatalf("ran %d rounds, want 15", len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Failed < 0 || rec.Failed > len(rec.Selected) {
			t.Fatalf("round %d: failed %d outside [0,%d]", rec.Round, rec.Failed, len(rec.Selected))
		}
	}
	// 15 rounds × 5 users at p=0.999: all-but-certainly ≥1 loss.
	if len(sink.dropouts) == 0 {
		t.Fatal("p=0.999 produced no dropouts")
	}
}

// TestBatteryDeadUsersNeverReselected pins the battery invariant through the
// event stream: once OnBattery reports user q shut down, q never appears in
// a later round's (post-filter) selection — and therefore never in the
// aggregation weights — and partial cohorts still aggregate consistently.
func TestBatteryDeadUsersNeverReselected(t *testing.T) {
	// Probe one round to size a battery lasting ~2.5 rounds.
	env := newTestEnv(t, 53, 6)
	probe := baseConfig(env, allUsersPlanner(env.devs))
	probe.MaxRounds = 1
	one, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	perUser := one.Records[0].Energy / float64(len(env.devs))

	env2 := newTestEnv(t, 53, 6)
	sink := &recordingSink{}
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 40
	cfg.BatteryCapacityJ = 2.5 * perUser
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedByDeadFleet {
		t.Fatal("full-participation fleet with ~2.5-round batteries must die")
	}
	if len(sink.batteries) == 0 {
		t.Fatal("no battery shutdown events")
	}

	deadSince := map[int]int{} // user → round its battery event fired
	for _, ev := range sink.batteries {
		if ev.SpentJ < cfg.BatteryCapacityJ {
			t.Fatalf("battery event below capacity: %+v", ev)
		}
		if _, dup := deadSince[ev.User]; dup {
			t.Fatalf("user %d shut down twice", ev.User)
		}
		deadSince[ev.User] = ev.Round
	}
	for _, ev := range sink.selections {
		for _, q := range ev.Selected {
			if died, ok := deadSince[q]; ok && ev.Round > died {
				t.Fatalf("dead user %d (died round %d) selected in round %d", q, died, ev.Round)
			}
		}
	}
	// Partial cohorts still satisfy the aggregation balance.
	aggByRound := map[int]obsAggregate{}
	for _, ev := range sink.aggregates {
		aggByRound[ev.Round] = obsAggregate{uploads: ev.Uploads, failed: ev.Failed}
	}
	for _, rec := range res.Records {
		if agg, ok := aggByRound[rec.Round]; ok {
			if agg.uploads+agg.failed != len(rec.Selected) {
				t.Fatalf("round %d: uploads %d + failed %d != selected %d",
					rec.Round, agg.uploads, agg.failed, len(rec.Selected))
			}
		}
	}
}

// TestBatteryAndDropoutCompose: both fault knobs at once keep every
// invariant — dead users stay out of cohorts, dropped users stay out of
// aggregates, and the run ends in one of the documented exits.
func TestBatteryAndDropoutCompose(t *testing.T) {
	env := newTestEnv(t, 54, 6)
	probe := baseConfig(env, allUsersPlanner(env.devs))
	probe.MaxRounds = 1
	one, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	perUser := one.Records[0].Energy / float64(len(env.devs))

	env2 := newTestEnv(t, 54, 6)
	sink := &recordingSink{}
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 40
	cfg.DropoutProb = 0.3
	cfg.BatteryCapacityJ = 3 * perUser
	cfg.Sink = sink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadSince := map[int]int{}
	for _, ev := range sink.batteries {
		deadSince[ev.User] = ev.Round
	}
	for _, ev := range sink.selections {
		for _, q := range ev.Selected {
			if died, ok := deadSince[q]; ok && ev.Round > died {
				t.Fatalf("dead user %d selected in round %d", q, ev.Round)
			}
		}
	}
	for _, ev := range sink.dropouts {
		if died, ok := deadSince[ev.User]; ok && ev.Round > died {
			t.Fatalf("dead user %d reported as dropout in round %d", ev.User, ev.Round)
		}
	}
	if !res.HaltedByDeadFleet && len(res.Records) != cfg.MaxRounds {
		t.Fatalf("run ended after %d rounds without a dead fleet", len(res.Records))
	}
}
