package fl

import (
	"math"
	"math/rand"
	"testing"
)

// TestFedAvgHierSingleEdgeBitIdentical pins the E == 1 hierarchical path
// bit-identical to flat FedAvg: share = W/W = 1.0 exactly in IEEE-754, so
// the two-level composition collapses to the one-level mean bitwise.
func TestFedAvgHierSingleEdgeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(12)
		uploads := make([][]float64, m)
		weights := make([]int, m)
		edges := make([]int, m)
		for i := range uploads {
			uploads[i] = make([]float64, n)
			for j := range uploads[i] {
				uploads[i][j] = rng.NormFloat64()
			}
			weights[i] = 1 + rng.Intn(100)
		}
		flat := make([]float64, n)
		hier := make([]float64, n)
		var scratch HierScratch
		FedAvgInto(flat, uploads, weights)
		FedAvgHierInto(hier, &scratch, uploads, weights, edges, 1)
		for j := range flat {
			if flat[j] != hier[j] {
				t.Fatalf("trial %d: param %d diverges: flat %v, hier %v", trial, j, flat[j], hier[j])
			}
		}
	}
}

// TestFedAvgHierWeightedCorrectness checks the two-level mean agrees with
// flat FedAvg up to float reassociation across random multi-edge splits —
// the algebraic identity Σ_e (W_e/W)·(Σ_{i∈e} w_i·M_i/W_e) = Σ_i w_i·M_i/W.
func TestFedAvgHierWeightedCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		m := 2 + rng.Intn(20)
		numEdges := 2 + rng.Intn(4)
		uploads := make([][]float64, m)
		weights := make([]int, m)
		edges := make([]int, m)
		for i := range uploads {
			uploads[i] = make([]float64, n)
			for j := range uploads[i] {
				uploads[i][j] = rng.NormFloat64()
			}
			weights[i] = 1 + rng.Intn(100)
			edges[i] = rng.Intn(numEdges)
		}
		flat := make([]float64, n)
		hier := make([]float64, n)
		var scratch HierScratch
		FedAvgInto(flat, uploads, weights)
		FedAvgHierInto(hier, &scratch, uploads, weights, edges, numEdges)
		for j := range flat {
			if math.Abs(flat[j]-hier[j]) > 1e-12*(1+math.Abs(flat[j])) {
				t.Fatalf("trial %d: param %d diverges beyond reassociation noise: flat %v, hier %v", trial, j, flat[j], hier[j])
			}
		}
	}
	// Empty edges contribute nothing: all uploads on edge 2 of 5.
	uploads := [][]float64{{1, 2}, {3, 4}}
	weights := []int{1, 3}
	dst := make([]float64, 2)
	want := make([]float64, 2)
	var scratch HierScratch
	FedAvgInto(want, uploads, weights)
	FedAvgHierInto(dst, &scratch, uploads, weights, []int{2, 2}, 5)
	for j := range dst {
		if dst[j] != want[j] {
			t.Fatalf("sparse edges: param %d = %v, want %v", j, dst[j], want[j])
		}
	}
}

func TestFedAvgHierPanics(t *testing.T) {
	var scratch HierScratch
	dst := make([]float64, 2)
	ok := [][]float64{{1, 2}}
	for name, f := range map[string]func(){
		"no uploads":   func() { FedAvgHierInto(dst, &scratch, nil, nil, nil, 1) },
		"ragged edges": func() { FedAvgHierInto(dst, &scratch, ok, []int{1}, []int{0, 1}, 2) },
		"zero edges":   func() { FedAvgHierInto(dst, &scratch, ok, []int{1}, []int{0}, 0) },
		"edge range":   func() { FedAvgHierInto(dst, &scratch, ok, []int{1}, []int{3}, 2) },
		"bad weight":   func() { FedAvgHierInto(dst, &scratch, ok, []int{0}, []int{0}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
