package fl

import (
	"testing"

	"helcfl/internal/wireless"
)

func TestRunWithDropoutStillConverges(t *testing.T) {
	env := newTestEnv(t, 30, 8)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 80
	cfg.DropoutProb = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalFailed := 0
	for _, r := range res.Records {
		if r.Failed < 0 || r.Failed > len(r.Selected) {
			t.Fatalf("round %d: failed count %d out of range", r.Round, r.Failed)
		}
		totalFailed += r.Failed
	}
	if totalFailed == 0 {
		t.Fatal("dropout 0.3 over 80 rounds must produce failures")
	}
	// Training still reaches useful accuracy despite lost uploads.
	if res.BestAccuracy < 0.5 {
		t.Fatalf("best accuracy %g collapsed under dropout", res.BestAccuracy)
	}
}

func TestRunDropoutCostsStillAccounted(t *testing.T) {
	env := newTestEnv(t, 31, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 20
	cfg.DropoutProb = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 31, 6)
	cfg2 := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg2.MaxRounds = 20
	clean, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Failed users still paid compute and airtime: the per-round cost model
	// is selection-driven, so both runs cost the same.
	if res.TotalEnergy != clean.TotalEnergy || res.TotalTime != clean.TotalTime {
		t.Fatalf("fault injection changed the cost model: %g/%g vs %g/%g",
			res.TotalEnergy, res.TotalTime, clean.TotalEnergy, clean.TotalTime)
	}
}

func TestRunInvalidDropoutRejected(t *testing.T) {
	env := newTestEnv(t, 32, 4)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.DropoutProb = 1.0
	if _, err := Run(cfg); err == nil {
		t.Fatal("dropout 1.0 must be rejected")
	}
	cfg.DropoutProb = -0.1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative dropout must be rejected")
	}
}

func TestRunWithFadingChannelChangesCosts(t *testing.T) {
	env := newTestEnv(t, 33, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 15
	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 33, 6)
	cfg2 := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg2.MaxRounds = 15
	cfg2.Gains = wireless.NewBlockFading(0.6, 99)
	faded, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if faded.TotalTime == static.TotalTime {
		t.Fatal("block fading must perturb upload delays")
	}
	// Training itself is unaffected by the channel (same selections, same
	// data), so accuracy trajectories match.
	if faded.FinalAccuracy != static.FinalAccuracy {
		t.Fatalf("fading changed training: %g vs %g", faded.FinalAccuracy, static.FinalAccuracy)
	}
}

func TestRunWithZeroSigmaFadingMatchesStatic(t *testing.T) {
	env := newTestEnv(t, 34, 5)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 8
	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 34, 5)
	cfg2 := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg2.MaxRounds = 8
	cfg2.Gains = wireless.NewBlockFading(0, 1)
	faded, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if faded.TotalTime != static.TotalTime || faded.TotalEnergy != static.TotalEnergy {
		t.Fatal("σ=0 fading must be exactly static")
	}
}
