package fl

import (
	"fmt"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
	"helcfl/internal/tensor"
)

// Client is one user device's training-side state. The same scratch model
// is reused across rounds; parameters are overwritten from the global model
// before each local update, mirroring the broadcast in Algorithm 1, line 5.
type Client struct {
	// User is the device index.
	User int
	// Data is the local dataset D_q.
	Data *dataset.Dataset

	model   *nn.Sequential
	flatten bool
	x       *tensor.Tensor
	loss    *nn.SoftmaxCrossEntropy
	flat    []float64 // reused upload buffer, valid until the next update
}

// NewClient builds a client around a model instance structurally identical
// to the global model.
func NewClient(user int, data *dataset.Dataset, model *nn.Sequential, flattenInput bool) *Client {
	if data == nil || data.N() == 0 {
		panic(fmt.Sprintf("fl: client %d has no data", user))
	}
	c := &Client{User: user, Data: data, model: model, flatten: flattenInput, loss: nn.NewSoftmaxCrossEntropy()}
	if flattenInput {
		c.x = data.FlatX()
	} else {
		c.x = data.X
	}
	return c
}

// LocalUpdate implements Eq. (3): starting from the broadcast global
// parameters, run `steps` full-batch gradient-descent passes over the local
// dataset at learning rate lr, and return the updated flat parameter vector
// (the upload payload) along with the final local training loss.
func (c *Client) LocalUpdate(globalFlat []float64, lr float64, steps int) ([]float64, float64) {
	return c.LocalUpdateProx(globalFlat, lr, steps, 0)
}

// The returned slice is the client's internal upload buffer, reused on the
// next update — callers that need it past that point must copy it.
//
// LocalUpdateProx is LocalUpdate with a FedProx proximal term (Li et al.,
// MLSys'20): each step descends ∇[L(θ) + (μ/2)·‖θ − θ_G‖²], anchoring the
// local trajectory to the broadcast model. μ = 0 recovers plain FedAvg /
// Eq. (3). The proximal term exists to tame the client drift that appears
// with multiple local steps under Non-IID data (see the Eq. 19 boundary
// test) — an extension beyond the paper.
func (c *Client) LocalUpdateProx(globalFlat []float64, lr float64, steps int, mu float64) ([]float64, float64) {
	if steps <= 0 {
		panic(fmt.Sprintf("fl: client %d: non-positive steps %d", c.User, steps))
	}
	if mu < 0 {
		panic(fmt.Sprintf("fl: client %d: negative proximal weight %g", c.User, mu))
	}
	c.model.SetFlatParams(globalFlat)
	lossVal := 0.0
	for s := 0; s < steps; s++ {
		c.model.ZeroGrads()
		logits := c.model.Forward(c.x, true)
		lossVal = c.loss.Forward(logits, c.Data.Labels)
		c.model.Backward(c.loss.Backward())
		// θ ← θ - τ·(∇L + μ(θ − θ_G)); with μ=0 this is exactly Eq. (3)
		// (the mean over |D_q| is inside the softmax-CE loss).
		params, grads := c.model.Params(), c.model.Grads()
		off := 0
		for i, p := range params {
			g := grads[i]
			if mu != 0 {
				pd, gd := p.Data(), g.Data()
				for j := range pd {
					gd[j] += mu * (pd[j] - globalFlat[off+j])
				}
			}
			p.AXPY(-lr, g)
			off += p.Size()
		}
	}
	if len(c.flat) != c.model.NumParams() {
		c.flat = make([]float64, c.model.NumParams())
	}
	c.model.FlatParamsInto(c.flat)
	return c.flat, lossVal
}

// Model exposes the client's scratch model (used by the SL engine, where
// the model is persistent per user rather than overwritten each round).
func (c *Client) Model() *nn.Sequential { return c.model }

// TrainOwn runs `steps` GD passes on the client's persistent model without
// resetting from a global model — the separated-learning update.
func (c *Client) TrainOwn(lr float64, steps int) float64 {
	lossVal := 0.0
	for s := 0; s < steps; s++ {
		c.model.ZeroGrads()
		logits := c.model.Forward(c.x, true)
		lossVal = c.loss.Forward(logits, c.Data.Labels)
		c.model.Backward(c.loss.Backward())
		params, grads := c.model.Params(), c.model.Grads()
		for i, p := range params {
			p.AXPY(-lr, grads[i])
		}
	}
	return lossVal
}
