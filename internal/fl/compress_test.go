package fl

import (
	"testing"

	"helcfl/internal/compress"
)

func TestRunWithCompressorShrinksUploadsAndStillTrains(t *testing.T) {
	env := newTestEnv(t, 20, 8)
	base := baseConfig(env, allUsersPlanner(env.devs))
	base.MaxRounds = 40
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	env2 := newTestEnv(t, 20, 8)
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 40
	cfg.Compressor = compress.NewTopK(0.2)
	compressed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The compressed C_model must be smaller, so rounds are shorter.
	if compressed.ModelBits >= plain.ModelBits {
		t.Fatalf("compressed C_model %g not below fp32 %g", compressed.ModelBits, plain.ModelBits)
	}
	if compressed.TotalTime >= plain.TotalTime {
		t.Fatalf("compressed run not faster: %g vs %g", compressed.TotalTime, plain.TotalTime)
	}
	// Lossy deltas must still learn something well above chance (4 classes).
	if compressed.BestAccuracy < 0.4 {
		t.Fatalf("compressed training collapsed: %g", compressed.BestAccuracy)
	}
}

func TestRunWithIdentityCompressorMatchesPlain(t *testing.T) {
	env := newTestEnv(t, 21, 6)
	base := baseConfig(env, allUsersPlanner(env.devs))
	base.MaxRounds = 10
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newTestEnv(t, 21, 6)
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 10
	cfg.Compressor = compress.None{}
	ident, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalAccuracy != ident.FinalAccuracy {
		t.Fatalf("identity compressor changed training: %g vs %g", plain.FinalAccuracy, ident.FinalAccuracy)
	}
	if plain.ModelBits != ident.ModelBits {
		t.Fatalf("identity compressor changed C_model: %g vs %g", plain.ModelBits, ident.ModelBits)
	}
}
