package fl

import (
	"testing"
)

func TestBatteryDisabledKeepsFleetAlive(t *testing.T) {
	env := newTestEnv(t, 40, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.AliveDevices != len(env.devs) {
			t.Fatalf("round %d: alive = %d without batteries", r.Round, r.AliveDevices)
		}
	}
}

func TestBatteryDepletionKillsDevices(t *testing.T) {
	env := newTestEnv(t, 41, 6)
	// First measure the per-round energy of the full-participation planner,
	// then give devices roughly three rounds of budget.
	probe := baseConfig(env, allUsersPlanner(env.devs))
	probe.MaxRounds = 1
	one, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	perUser := one.Records[0].Energy / float64(len(env.devs))

	env2 := newTestEnv(t, 41, 6)
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 50
	cfg.BatteryCapacityJ = 3 * perUser
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedByDeadFleet {
		t.Fatal("full-participation fleet must eventually die and halt")
	}
	if len(res.Records) >= 50 {
		t.Fatal("run did not halt early")
	}
	last := res.Records[len(res.Records)-1]
	if last.AliveDevices >= len(env2.devs) {
		t.Fatalf("no devices died: alive = %d", last.AliveDevices)
	}
	// Alive count is non-increasing.
	prev := len(env2.devs)
	for _, r := range res.Records {
		if r.AliveDevices > prev {
			t.Fatalf("round %d: alive count increased %d → %d", r.Round, prev, r.AliveDevices)
		}
		prev = r.AliveDevices
	}
}

func TestBatteryDeadUsersExcludedFromRounds(t *testing.T) {
	env := newTestEnv(t, 42, 8)
	probe := baseConfig(env, allUsersPlanner(env.devs))
	probe.MaxRounds = 1
	one, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	perUser := one.Records[0].Energy / float64(len(env.devs))

	env2 := newTestEnv(t, 42, 8)
	cfg := baseConfig(env2, allUsersPlanner(env2.devs))
	cfg.MaxRounds = 30
	cfg.BatteryCapacityJ = 2.5 * perUser
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Once devices start dying, round cohorts shrink below the full fleet.
	shrunk := false
	for _, r := range res.Records {
		if len(r.Selected) < len(env2.devs) {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("dead devices were never excluded from a round")
	}
}
