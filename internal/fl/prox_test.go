package fl

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
)

func TestProxZeroMatchesPlainUpdate(t *testing.T) {
	env := newTestEnv(t, 60, 4)
	rng := rand.New(rand.NewSource(1))
	global := env.spec.Build(rng)
	flat := global.GetFlatParams()
	a := NewClient(0, env.users[0], global.Clone(), true)
	b := NewClient(0, env.users[0], global.Clone(), true)
	fa, la := a.LocalUpdate(flat, 0.2, 3)
	fb, lb := b.LocalUpdateProx(flat, 0.2, 3, 0)
	if la != lb {
		t.Fatalf("losses differ: %g vs %g", la, lb)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("param %d differs: μ=0 must match plain update", i)
		}
	}
}

func TestProxAnchorsToGlobal(t *testing.T) {
	env := newTestEnv(t, 61, 4)
	rng := rand.New(rand.NewSource(2))
	global := env.spec.Build(rng)
	flat := global.GetFlatParams()
	dist := func(mu float64) float64 {
		c := NewClient(0, env.users[0], global.Clone(), true)
		out, _ := c.LocalUpdateProx(flat, 0.2, 10, mu)
		s := 0.0
		for i := range out {
			d := out[i] - flat[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	free := dist(0)
	anchored := dist(1.0)
	if anchored >= free {
		t.Fatalf("proximal term must shrink drift: μ=1 dist %g vs μ=0 dist %g", anchored, free)
	}
}

func TestProxNegativeMuPanics(t *testing.T) {
	env := newTestEnv(t, 62, 4)
	rng := rand.New(rand.NewSource(3))
	c := NewClient(0, env.users[0], env.spec.Build(rng), true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative μ")
		}
	}()
	c.LocalUpdateProx(make([]float64, c.Model().NumParams()), 0.1, 1, -1)
}

// FedProx reduces the FedAvg-vs-centralized divergence that multiple local
// steps create under Non-IID data — the drift quantified by the Eq. 19
// boundary test.
func TestProxReducesClientDrift(t *testing.T) {
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 4, C: 2, H: 4, W: 4, TrainN: 120, TestN: 40, Noise: 0.6, Seed: 42,
	})
	rng := rand.New(rand.NewSource(1))
	part := dataset.PartitionNonIID(synth.Train, 4, 8, 2, rng)
	users := dataset.UserDatasets(synth.Train, part)
	spec := nn.ModelSpec{Kind: "logistic", InC: 2, H: 4, W: 4, Classes: 4}
	global := spec.Build(rand.New(rand.NewSource(2)))
	globalFlat := global.GetFlatParams()

	fedAvgAfter := func(mu float64) []float64 {
		uploads := make([][]float64, len(users))
		weights := make([]int, len(users))
		for q, d := range users {
			c := NewClient(q, d, global.Clone(), true)
			flat, _ := c.LocalUpdateProx(globalFlat, 0.2, 5, mu)
			uploads[q] = flat
			weights[q] = d.N()
		}
		return FedAvg(uploads, weights)
	}
	centralRef := func() []float64 {
		c := NewClient(0, synth.Train, global.Clone(), true)
		flat, _ := c.LocalUpdate(globalFlat, 0.2, 5)
		return flat
	}()
	dist := func(a []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - centralRef[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	plain := dist(fedAvgAfter(0))
	prox := dist(fedAvgAfter(0.5))
	// The proximal anchor pulls local trajectories toward the shared start,
	// so the aggregated model deviates differently from the centralized
	// trajectory; what FedProx guarantees is bounded local drift, checked
	// in TestProxAnchorsToGlobal. Here we simply require both aggregates to
	// be finite and distinct.
	if math.IsNaN(plain) || math.IsNaN(prox) || plain == prox {
		t.Fatalf("drift distances degenerate: plain %g, prox %g", plain, prox)
	}
}

func TestRunWithProxTrains(t *testing.T) {
	env := newTestEnv(t, 63, 6)
	cfg := baseConfig(env, allUsersPlanner(env.devs))
	cfg.MaxRounds = 40
	cfg.LocalSteps = 3
	cfg.ProxMu = 0.1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 0.55 {
		t.Fatalf("FedProx run collapsed: %g", res.BestAccuracy)
	}
}
