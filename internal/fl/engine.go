package fl

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"time"

	"helcfl/internal/compress"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/obs/span"
	"helcfl/internal/sim"
	"helcfl/internal/tensor"
	"helcfl/internal/wireless"
)

// Config describes one federated training run (Algorithm 1 end-to-end).
type Config struct {
	// Spec is the shared model architecture.
	Spec nn.ModelSpec
	// Devices is the fleet; Devices[q].NumSamples is set by Run from
	// UserData.
	Devices []*device.Device
	// Channel is the shared TDMA uplink.
	Channel wireless.Channel
	// UserData aligns with Devices: D_q for each user.
	UserData []*dataset.Dataset
	// Test is the global held-out set the FLCC evaluates on.
	Test *dataset.Dataset
	// Planner makes the per-round selection + frequency decision.
	Planner Planner
	// LR is the gradient-descent learning rate τ.
	LR float64
	// LocalSteps is the number of full-batch GD passes per round (paper: 1).
	LocalSteps int
	// ProxMu adds a FedProx proximal term μ/2·‖θ−θ_G‖² to every local
	// update. 0 (the default) is plain FedAvg per the paper.
	ProxMu float64
	// MaxRounds is J, the iteration budget.
	MaxRounds int
	// DeadlineSec, when positive, stops training once cumulative simulated
	// wall-clock exceeds it (constraint (14)).
	DeadlineSec float64
	// TargetAccuracy, when positive, stops training at the first evaluation
	// reaching it (the convergence exit of Algorithm 1).
	TargetAccuracy float64
	// ConvergePatience, when positive, stops training when the evaluated
	// test loss has not improved by at least ConvergeDelta for that many
	// consecutive evaluations — the other reading of Algorithm 1's "checks
	// whether this newly created global ML model converges".
	ConvergePatience int
	// ConvergeDelta is the minimum loss improvement that resets patience
	// (default 0: any improvement counts).
	ConvergeDelta float64
	// EvalEvery evaluates global test accuracy every k rounds (and always
	// on the final round). 0 means every round.
	EvalEvery int
	// QuantizeUploads round-trips each upload through the float32 wire
	// format, modelling the real payload of Eq. (7).
	QuantizeUploads bool
	// QuantizeBroadcast round-trips the per-round broadcast parameters
	// through the float32 wire format before clients train on them — what a
	// deployed device actually receives (nn.ParamBytes). Together with
	// QuantizeUploads this makes the engine bit-for-bit equivalent to the
	// loopback-HTTP deployment; the deploy conformance test pins that.
	QuantizeBroadcast bool
	// Compressor, when non-nil, lossy-compresses every upload (top-k
	// sparsification or scalar quantization; see internal/compress) and
	// shrinks C_model accordingly — the communication-cost alternative the
	// paper compares its scheduling approach against.
	Compressor compress.Compressor
	// Gains, when non-nil, supplies per-round channel gains (block
	// fading). The planner still decides on the static initialization-phase
	// gains, exactly the staleness a real FLCC faces.
	Gains wireless.GainProcess
	// DropoutProb is the per-user, per-round probability that a selected
	// user's upload fails (battery exhaustion or radio loss — the paper's
	// Section I motivation). The failed user's compute and airtime costs
	// are still paid; its model is excluded from FedAvg.
	DropoutProb float64
	// BatteryCapacityJ, when positive, gives every device a finite energy
	// budget. A device whose cumulative training energy exceeds it shuts
	// down: the FLCC drops it from future rounds (it no longer responds).
	// This instantiates the paper's Section I motivation — "energy of user
	// devices is quickly exhausted or even device shutdown occurs".
	BatteryCapacityJ float64
	// Sink, when non-nil, receives structured engine events as the run
	// executes: round boundaries, selection decisions (with Algorithm 2
	// utility/decay state when the planner exposes it), per-user
	// local-update and upload spans, frequency-determination outcomes,
	// dropout and battery faults, and aggregations. See internal/obs.
	// A nil Sink adds zero allocations to the round hot path.
	Sink obs.EventSink
	// Trace, when non-nil, records measured phase spans for every round —
	// plan (selection + DVFS solve), local train, upload post-processing,
	// aggregate, eval — alongside the modeled Eq. (7)–(8) costs as span
	// attributes, so wall time and analytical time are comparable per
	// phase. Like a nil Sink, a nil Trace adds zero allocations to the
	// round hot path.
	Trace *span.Recorder
	// TraceParent, when non-zero, parents the run span: the grid runner
	// nests campaign cells under their cell span, and a deploy server
	// stitches rounds under the remote caller's span.
	TraceParent span.Ref
	// Seed drives model initialization.
	Seed int64
}

// Validate reports whether the configuration is runnable; fl.Run calls it
// before touching any state, so a config that validates cleanly fails only
// for runtime reasons (planner errors, dead fleets).
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	switch {
	case len(c.Devices) == 0:
		return fmt.Errorf("fl: no devices")
	case len(c.UserData) != len(c.Devices):
		return fmt.Errorf("fl: %d user datasets for %d devices", len(c.UserData), len(c.Devices))
	case c.Test == nil || c.Test.N() == 0:
		return fmt.Errorf("fl: no test data")
	case c.Planner == nil:
		return fmt.Errorf("fl: no planner")
	case c.LR <= 0:
		return fmt.Errorf("fl: non-positive learning rate %g", c.LR)
	case c.LocalSteps <= 0:
		return fmt.Errorf("fl: non-positive local steps %d", c.LocalSteps)
	case c.MaxRounds <= 0:
		return fmt.Errorf("fl: non-positive round budget %d", c.MaxRounds)
	case c.DropoutProb < 0 || c.DropoutProb >= 1:
		return fmt.Errorf("fl: dropout probability %g outside [0,1)", c.DropoutProb)
	}
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	for q, d := range c.UserData {
		if d == nil || d.N() == 0 {
			return fmt.Errorf("fl: user %d has no data", q)
		}
	}
	return nil
}

// RoundRecord captures one executed training round.
type RoundRecord struct {
	// Round is the 0-based iteration index.
	Round int
	// Selected lists participating user indices.
	Selected []int
	// Freqs aligns with Selected.
	Freqs []float64
	// Delay is the true TDMA round makespan.
	Delay float64
	// Energy totals Eq. (11) for the round; ComputeEnergy and UploadEnergy
	// are its parts; Slack is the reclaimable stop-and-wait time.
	Energy, ComputeEnergy, UploadEnergy, Slack float64
	// CumTime and CumEnergy accumulate Delay and Energy up to and including
	// this round.
	CumTime, CumEnergy float64
	// TrainLoss is the mean final local loss across selected users.
	TrainLoss float64
	// Failed counts selected users whose upload was lost this round
	// (straggler/battery fault injection).
	Failed int
	// AliveDevices counts devices with remaining battery after this round
	// (equals the fleet size when batteries are disabled).
	AliveDevices int
	// Evaluated reports whether TestLoss/TestAccuracy were measured this
	// round.
	Evaluated bool
	// TestLoss and TestAccuracy are global-model metrics (valid when
	// Evaluated).
	TestLoss, TestAccuracy float64
}

// Result is a completed training run.
type Result struct {
	// Scheme is the planner name.
	Scheme string
	// Records holds one entry per executed round.
	Records []RoundRecord
	// Model is the final global model.
	Model *nn.Sequential
	// ModelBits is C_model used for every upload.
	ModelBits float64
	// FinalAccuracy and BestAccuracy summarize test accuracy.
	FinalAccuracy, BestAccuracy float64
	// TotalTime and TotalEnergy are the summed round delays and energies.
	TotalTime, TotalEnergy float64
	// StoppedByDeadline and ReachedTarget report which exit fired.
	StoppedByDeadline, ReachedTarget bool
	// Converged reports the loss-plateau exit fired.
	Converged bool
	// HaltedByDeadFleet reports that training stopped because every user
	// the planner selected had exhausted its battery.
	HaltedByDeadFleet bool
}

// Engine executes Algorithm 1 one round at a time, exposing the campaign
// state between rounds so a long-horizon run can be checkpointed
// (Snapshot) and resumed elsewhere (RestoreEngine) without perturbing the
// training trajectory. fl.Run wraps it for callers that want the whole
// campaign in one call; both paths execute byte-identical mathematics.
type Engine struct {
	cfg     Config
	rng     *rand.Rand
	rngUsed uint64 // post-initialization Float64 draws (dropout sampling)

	global    *nn.Sequential
	modelBits float64
	flatten   bool
	clients   []*Client
	evalEvery int

	res           *Result
	cumTime       float64
	cumEnergy     float64
	bestLoss      float64
	sinceImproved int
	spentJ        []float64

	round    int  // next round to execute
	stopped  bool // an exit condition fired
	finished bool // OnRunEnd emitted

	runSp span.Span // open "fl.run" span; zero when Config.Trace is nil

	// Round scratch, reused across Step calls: once every buffer has grown
	// to the fleet's high-water mark, a steady-state round (nil Sink/Trace,
	// no eval, default knobs) allocates nothing. The alloc-gate test in
	// engine_alloc_test.go pins this at zero.
	selDevs    []*device.Device
	gainsBuf   []float64
	simScratch sim.Scratch
	globalFlat []float64 // full-precision global parameters each round
	bcastBuf   []float64 // float32-quantized broadcast (QuantizeBroadcast)
	broadcast  []float64 // what clients actually receive this round
	flats      [][]float64
	losses     []float64
	wall       []float64 // aliases wallBuf while a Sink is installed, else nil
	wallBuf    []float64
	uploadsBuf [][]float64
	weightsBuf []int
	deltaBuf   []float64
	avgBuf     []float64

	// Hierarchical aggregation tier, active when the planner implements
	// EdgeTopology: edgeBuf maps each selected user to its edge aggregator,
	// upEdgesBuf the surviving uploads likewise, hierScratch the per-edge
	// FedAvg accumulators.
	topo        EdgeTopology
	edgeBuf     []int
	upEdgesBuf  []int
	hierScratch HierScratch

	// Persistent local-update worker pool, spawned lazily on the first
	// round that trains more than one client concurrently and drained when
	// Result finalizes the run. With one effective worker the engine trains
	// clients inline on the calling goroutine — no goroutines, no channel.
	taskCh chan trainTask
	taskWG sync.WaitGroup
}

// trainTask names one client local update: selected[si] == q trains into
// result slot si.
type trainTask struct{ si, q int }

// NewEngine validates the configuration, runs the initialization phase of
// Algorithm 1 (lines 1–2), and returns an engine positioned before round 0.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := newEngineState(cfg)
	if err != nil {
		return nil, err
	}
	e.emitRunStart()
	e.startRunSpan()
	return e, nil
}

// newEngineState builds everything deterministic about an engine — model,
// clients, RNG at its post-initialization position — without emitting
// events. Shared by NewEngine and RestoreEngine.
func newEngineState(cfg Config) (*Engine, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	global := cfg.Spec.Build(rng)
	modelBits := nn.ModelBits(global)
	if cfg.Compressor != nil {
		modelBits = cfg.Compressor.BitsFor(global.NumParams())
	}
	flatten := cfg.Spec.FlattensInput()

	// Initialization phase (Algorithm 1, lines 1–2): the FLCC learns each
	// device's resources; here that also pins |D_q| for Eqs. (4)–(5).
	clients := make([]*Client, len(cfg.Devices))
	for q, d := range cfg.Devices {
		// Skip-if-equal: devices from a cached experiment environment are
		// shared across concurrently running engines, and the env builder
		// already pinned |D_q|. Only writing on change keeps the shared
		// fleet read-only during parallel campaigns (race-free by absence
		// of writes, not by luck of identical values).
		if n := cfg.UserData[q].N(); d.NumSamples != n {
			d.NumSamples = n
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		clients[q] = NewClient(q, cfg.UserData[q], global.Clone(), flatten)
	}

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	var topo EdgeTopology
	if t, ok := cfg.Planner.(EdgeTopology); ok && t.NumEdges() > 0 {
		topo = t
	}
	return &Engine{
		cfg:       cfg,
		rng:       rng,
		global:    global,
		modelBits: modelBits,
		flatten:   flatten,
		clients:   clients,
		evalEvery: evalEvery,
		res: &Result{
			Scheme: cfg.Planner.Name(), ModelBits: modelBits,
			// The record log grows to exactly MaxRounds entries on a full
			// campaign; reserving it up front keeps append out of the
			// steady-state round.
			Records: make([]RoundRecord, 0, cfg.MaxRounds),
		},
		bestLoss: math.Inf(1),
		spentJ:   make([]float64, len(cfg.Devices)),
		topo:     topo,
	}, nil
}

func (e *Engine) emitRunStart() {
	if e.cfg.Sink != nil {
		e.cfg.Sink.OnRunStart(obs.RunStartEvent{
			Scheme:    e.res.Scheme,
			Users:     len(e.cfg.Devices),
			MaxRounds: e.cfg.MaxRounds,
			ModelBits: e.modelBits,
		})
	}
}

// startRunSpan opens the "fl.run" span bracketing the whole campaign; it
// is closed by the first Result call after the campaign finishes. On a
// nil Config.Trace this is a complete no-op.
func (e *Engine) startRunSpan() {
	e.runSp = e.cfg.Trace.Start(e.cfg.TraceParent, "fl.run")
	e.runSp.SetStr("scheme", e.res.Scheme)
}

// Round returns the index of the next round the engine would execute.
func (e *Engine) Round() int { return e.round }

// Done reports that no further round will execute (budget exhausted or an
// exit condition fired).
func (e *Engine) Done() bool { return e.stopped || e.round >= e.cfg.MaxRounds }

// drawDropout samples the per-user upload-loss coin, counting the draw so
// a snapshot can re-position the RNG stream exactly.
func (e *Engine) drawDropout() float64 {
	e.rngUsed++
	return e.rng.Float64()
}

func (e *Engine) alive(q int) bool {
	return e.cfg.BatteryCapacityJ <= 0 || e.spentJ[q] < e.cfg.BatteryCapacityJ
}

// Step executes the next training round of Algorithm 1: selection,
// broadcast, parallel local updates, sequential TDMA uploads, and FedAvg
// aggregation, with the deadline and convergence exits. It returns whether
// a round was executed; false with a nil error means the campaign is done.
func (e *Engine) Step() (bool, error) {
	if e.Done() {
		return false, nil
	}
	cfg := &e.cfg
	j := e.round
	if cfg.Sink != nil {
		cfg.Sink.OnRoundStart(obs.RoundStartEvent{Round: j})
	}
	// Phase spans: "fl.round" brackets the round; plan / train / upload /
	// aggregate children carry the measured-vs-modeled decomposition. All
	// span calls are nil-safe no-ops without a Trace. Error and dead-fleet
	// exits below return without ending these spans, so they are never
	// recorded — every *recorded* round has its full phase set, which the
	// inspect gate asserts.
	//helcfl:allow(spanend) deliberately un-Ended on the error and dead-fleet exits: an aborted round must never be recorded, so the inspect phase gate only sees complete rounds
	roundSp := cfg.Trace.Start(e.runSp.Ref(), "fl.round")
	roundSp.SetInt("round", int64(j))
	//helcfl:allow(spanend) deliberately un-Ended on the error and dead-fleet exits, same contract as roundSp above
	planSp := cfg.Trace.Start(roundSp.Ref(), "fl.round.plan")
	if cfg.Trace != nil {
		if tp, ok := cfg.Planner.(TracedPlanner); ok {
			tp.SetTrace(cfg.Trace, planSp.Ref())
		}
	}
	selected, freqs := cfg.Planner.PlanRound(j)
	if len(selected) == 0 {
		return false, fmt.Errorf("fl: planner %q selected no users in round %d", cfg.Planner.Name(), j)
	}
	if cfg.BatteryCapacityJ > 0 {
		// Shut-down devices no longer respond to the broadcast; the
		// FLCC proceeds with the survivors of the selection.
		keptSel := selected[:0:len(selected)]
		keptFreqs := freqs[:0:len(freqs)]
		for i, q := range selected {
			if e.alive(q) {
				keptSel = append(keptSel, q)
				keptFreqs = append(keptFreqs, freqs[i])
			}
		}
		selected, freqs = keptSel, keptFreqs
		if len(selected) == 0 {
			// The planner's entire cohort is dead; training halts.
			e.res.HaltedByDeadFleet = true
			e.stopped = true
			return false, nil
		}
	}
	planSp.SetInt("selected", int64(len(selected)))
	planSp.End()
	if cfg.Sink != nil {
		ev := obs.SelectionEvent{Round: j, Selected: selected, Freqs: freqs}
		if dd, ok := cfg.Planner.(DecisionDetailer); ok {
			if util, alpha := dd.SelectionDetail(); util != nil && alpha != nil {
				ev.Utilities = make([]float64, len(selected))
				ev.Appearances = make([]int, len(selected))
				for i, q := range selected {
					ev.Utilities[i] = util[q]
					ev.Appearances[i] = alpha[q]
				}
			}
		}
		cfg.Sink.OnSelection(ev)
	}
	e.selDevs = e.selDevs[:0]
	for _, q := range selected {
		e.selDevs = append(e.selDevs, cfg.Devices[q])
	}
	var gains []float64
	if cfg.Gains != nil {
		e.gainsBuf = e.gainsBuf[:0]
		for _, q := range selected {
			e.gainsBuf = append(e.gainsBuf, cfg.Gains.Gain(j, q, cfg.Devices[q].ChannelGain))
		}
		gains = e.gainsBuf
	}
	// round.Users aliases the engine's sim scratch: valid until the next
	// Step, which covers every use below (telemetry and battery roll-up).
	var round sim.RoundResult
	if e.topo != nil {
		// Hierarchical tier: each user uploads to its edge aggregator and
		// the per-edge TDMA chains run in parallel.
		e.edgeBuf = growInts(e.edgeBuf, len(selected))
		for i, q := range selected {
			e.edgeBuf[i] = e.topo.EdgeOf(q)
		}
		round = e.simScratch.SimulateRoundEdges(e.selDevs, freqs, cfg.Channel, e.modelBits, cfg.LocalSteps, gains, e.edgeBuf, e.topo.NumEdges())
	} else {
		round = e.simScratch.SimulateRoundGains(e.selDevs, freqs, cfg.Channel, e.modelBits, cfg.LocalSteps, gains)
	}

	trainSp := cfg.Trace.Start(roundSp.Ref(), "fl.round.train")

	// Parallel local updates (lines 6–9): clients are independent (own
	// scratch model, shared read-only broadcast), so they train on a
	// bounded worker pool. Results land at fixed indices, keeping the
	// run bit-for-bit deterministic regardless of scheduling.
	if n := e.global.NumParams(); len(e.globalFlat) != n {
		e.globalFlat = make([]float64, n)
	}
	e.global.FlatParamsInto(e.globalFlat)
	globalFlat := e.globalFlat
	if cfg.QuantizeBroadcast {
		e.bcastBuf = quantizeF32Into(e.bcastBuf, e.globalFlat)
		globalFlat = e.bcastBuf
	}
	e.flats = growSliceTable(e.flats, len(selected))
	e.losses = growFloats(e.losses, len(selected))
	e.wall = nil
	if cfg.Sink != nil {
		e.wallBuf = growFloats(e.wallBuf, len(selected))
		e.wall = e.wallBuf
	}
	e.trainSelected(selected, globalFlat)
	flats, lossesByUser, wallSec := e.flats, e.losses, e.wall
	if cfg.Trace != nil {
		// Modeled counterpart of the measured train phase: the Eq. (4)–(5)
		// compute makespan (parallel users — the max delay) and energy.
		maxCal := 0.0
		for _, u := range round.Users {
			if u.ComputeDelay > maxCal {
				maxCal = u.ComputeDelay
			}
		}
		trainSp.SetFloat("model_sec", maxCal)
		trainSp.SetFloat("model_j", round.ComputeEnergy)
	}
	trainSp.End()

	if cfg.Sink != nil {
		// The realized frequency outcome and per-user spans. round.Users
		// is in TDMA transmission order with User = device ID (== fleet
		// index, the same identification the battery accounting uses).
		cfg.Sink.OnFrequency(obs.FrequencyEvent{
			Round: j, Users: selected, Freqs: freqs, SlackSec: round.TotalSlack,
		})
		siOf := make(map[int]int, len(selected))
		for i, q := range selected {
			siOf[q] = i
		}
		for _, u := range round.Users {
			si, ok := siOf[u.User]
			if !ok {
				continue
			}
			cfg.Sink.OnLocalUpdate(obs.LocalUpdateEvent{
				Round: j, User: u.User,
				FreqHz: u.Freq, SimSec: u.ComputeDelay, EnergyJ: u.ComputeEnergy,
				WallSec: wallSec[si], Loss: lossesByUser[si],
			})
			cfg.Sink.OnUpload(obs.UploadEvent{
				Round: j, User: u.User,
				SimSec: u.UploadDelay, EnergyJ: u.UploadEnergy,
				StartSec: u.UploadStart, EndSec: u.UploadEnd, WaitSec: u.Wait,
			})
		}
	}

	// Sequential post-processing and FedAvg (line 10).
	uploadSp := cfg.Trace.Start(roundSp.Ref(), "fl.round.upload")
	uploads := e.uploadsBuf[:0]
	weights := e.weightsBuf[:0]
	upEdges := e.upEdgesBuf[:0]
	lossSum := 0.0
	failed := 0
	for si, q := range selected {
		flat := flats[si]
		lossSum += lossesByUser[si]
		if cfg.DropoutProb > 0 && e.drawDropout() < cfg.DropoutProb {
			// The user computed and transmitted, but the FLCC never
			// receives a usable model; costs are already accounted in
			// the round simulation.
			failed++
			if cfg.Sink != nil {
				cfg.Sink.OnDropout(obs.DropoutEvent{Round: j, User: q})
			}
			continue
		}
		if cfg.Compressor != nil {
			// Compression operates on the model update Δ = θ_q − θ_G
			// (the standard practice for sparsification/quantization:
			// deltas concentrate energy in few coordinates, raw weights
			// do not). The server reconstructs θ_G + C(Δ). The delta
			// buffer is engine scratch; Compressor.Apply may still
			// allocate internally.
			e.deltaBuf = growFloats(e.deltaBuf, len(flat))
			delta := e.deltaBuf
			for j := range flat {
				delta[j] = flat[j] - globalFlat[j]
			}
			delta = cfg.Compressor.Apply(delta)
			for j := range flat {
				flat[j] = globalFlat[j] + delta[j]
			}
		}
		if cfg.QuantizeUploads {
			// In place: flat is the client's upload buffer, dead until its
			// next local update overwrites it.
			quantizeF32InPlace(flat)
		}
		uploads = append(uploads, flat)
		weights = append(weights, cfg.UserData[q].N())
		if e.topo != nil {
			upEdges = append(upEdges, e.edgeBuf[si])
		}
	}
	e.uploadsBuf, e.weightsBuf, e.upEdgesBuf = uploads, weights, upEdges
	if cfg.Trace != nil {
		// Modeled counterpart of the measured upload phase: Eq. (7)–(8)
		// total TDMA airtime and upload energy.
		totCom := 0.0
		for _, u := range round.Users {
			totCom += u.UploadDelay
		}
		uploadSp.SetFloat("model_sec", totCom)
		uploadSp.SetFloat("model_j", round.UploadEnergy)
		uploadSp.SetInt("failed", int64(failed))
	}
	uploadSp.End()
	aggSp := cfg.Trace.Start(roundSp.Ref(), "fl.round.aggregate")
	if len(uploads) > 0 {
		e.avgBuf = growFloats(e.avgBuf, len(uploads[0]))
		if e.topo != nil {
			FedAvgHierInto(e.avgBuf, &e.hierScratch, uploads, weights, upEdges, e.topo.NumEdges())
		} else {
			FedAvgInto(e.avgBuf, uploads, weights)
		}
		e.global.SetFlatParams(e.avgBuf)
		if cfg.Sink != nil {
			cfg.Sink.OnAggregate(obs.AggregateEvent{
				Round: j, Uploads: len(uploads), Failed: failed,
				TrainLoss: lossSum / float64(len(selected)),
			})
		}
	}
	if obs, ok := cfg.Planner.(Observer); ok {
		obs.ObserveRound(j, selected, lossesByUser)
	}
	aggSp.SetInt("uploads", int64(len(uploads)))
	aggSp.End()

	e.cumTime += round.Makespan
	e.cumEnergy += round.TotalEnergy
	aliveCount := len(cfg.Devices)
	if cfg.BatteryCapacityJ > 0 {
		for _, u := range round.Users {
			wasAlive := e.alive(u.User)
			e.spentJ[u.User] += u.ComputeEnergy + u.UploadEnergy
			if cfg.Sink != nil && wasAlive && !e.alive(u.User) {
				cfg.Sink.OnBattery(obs.BatteryEvent{Round: j, User: u.User, SpentJ: e.spentJ[u.User]})
			}
		}
		aliveCount = 0
		for q := range cfg.Devices {
			if e.alive(q) {
				aliveCount++
			}
		}
	}
	rec := RoundRecord{
		Round:         j,
		Selected:      selected,
		Freqs:         freqs,
		Delay:         round.Makespan,
		Energy:        round.TotalEnergy,
		ComputeEnergy: round.ComputeEnergy,
		UploadEnergy:  round.UploadEnergy,
		Slack:         round.TotalSlack,
		CumTime:       e.cumTime,
		CumEnergy:     e.cumEnergy,
		TrainLoss:     lossSum / float64(len(selected)),
		Failed:        failed,
		AliveDevices:  aliveCount,
	}

	lastRound := j == cfg.MaxRounds-1
	deadlineHit := cfg.DeadlineSec > 0 && e.cumTime >= cfg.DeadlineSec
	if j%e.evalEvery == 0 || lastRound || deadlineHit {
		evalSp := cfg.Trace.Start(roundSp.Ref(), "fl.round.eval")
		tl, ta := Evaluate(e.global, cfg.Test, e.flatten)
		evalSp.End()
		rec.Evaluated = true
		rec.TestLoss, rec.TestAccuracy = tl, ta
		if ta > e.res.BestAccuracy {
			e.res.BestAccuracy = ta
		}
		e.res.FinalAccuracy = ta
		if cfg.TargetAccuracy > 0 && ta >= cfg.TargetAccuracy {
			e.res.ReachedTarget = true
		}
		if cfg.ConvergePatience > 0 {
			if tl < e.bestLoss-cfg.ConvergeDelta {
				e.bestLoss = tl
				e.sinceImproved = 0
			} else {
				e.sinceImproved++
				if e.sinceImproved >= cfg.ConvergePatience {
					e.res.Converged = true
				}
			}
		}
	}
	if cfg.Sink != nil {
		cfg.Sink.OnRoundEnd(obs.RoundEndEvent{
			Round: rec.Round, Selected: rec.Selected,
			Failed: rec.Failed, Alive: rec.AliveDevices,
			DelaySec: rec.Delay, EnergyJ: rec.Energy,
			ComputeJ: rec.ComputeEnergy, UploadJ: rec.UploadEnergy,
			SlackSec: rec.Slack, CumTimeSec: rec.CumTime, CumEnergyJ: rec.CumEnergy,
			TrainLoss: rec.TrainLoss, Evaluated: rec.Evaluated,
			TestLoss: rec.TestLoss, TestAccuracy: rec.TestAccuracy,
		})
	}
	e.res.Records = append(e.res.Records, rec)
	if deadlineHit {
		e.res.StoppedByDeadline = true
		e.stopped = true
	}
	if e.res.ReachedTarget || e.res.Converged {
		e.stopped = true
	}
	if cfg.Trace != nil {
		// The modeled round roll-up (Eq. 10–11) next to the measured wall
		// time of the same round.
		roundSp.SetFloat("model_delay_sec", rec.Delay)
		roundSp.SetFloat("model_energy_j", rec.Energy)
	}
	roundSp.End()
	e.round++
	return true, nil
}

// Result finalizes and returns the run: totals are rolled up and, on the
// first call after the campaign finished, the RunEnd event fires. Calling
// it mid-campaign returns the in-progress result (no RunEnd).
func (e *Engine) Result() *Result {
	e.res.Model = e.global
	e.res.TotalTime = e.cumTime
	e.res.TotalEnergy = e.cumEnergy
	if e.Done() && !e.finished {
		e.finished = true
		e.drainPool()
		e.runSp.End()
		if e.cfg.Sink != nil {
			e.cfg.Sink.OnRunEnd(obs.RunEndEvent{
				Scheme: e.res.Scheme, Rounds: len(e.res.Records),
				TotalTimeSec: e.res.TotalTime, TotalEnergyJ: e.res.TotalEnergy,
				FinalAccuracy: e.res.FinalAccuracy, BestAccuracy: e.res.BestAccuracy,
				StoppedByDeadline: e.res.StoppedByDeadline, ReachedTarget: e.res.ReachedTarget,
				Converged: e.res.Converged, HaltedByDeadFleet: e.res.HaltedByDeadFleet,
			})
		}
	}
	return e.res
}

// Run executes Algorithm 1: initialization, then iterative rounds of
// selection, broadcast, parallel local updates, sequential TDMA uploads, and
// FedAvg aggregation, with the deadline and convergence exits.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	for {
		ok, err := e.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return e.Result(), nil
}

// trainSelected runs the round's local updates: inline on the calling
// goroutine when one worker is effective (small cohorts, single-core,
// tensor.SetWorkers(1)), otherwise fanned out on the engine's persistent
// worker pool. Either way results land at fixed slot indices, so the
// trajectory is bit-for-bit identical across worker counts.
func (e *Engine) trainSelected(selected []int, globalFlat []float64) {
	e.broadcast = globalFlat
	// tensor.Workers() defaults to GOMAXPROCS, matching the old
	// semaphore bound; tests force the pool on or off through the same
	// knob the kernels use.
	w := tensor.Workers()
	if w > len(selected) {
		w = len(selected)
	}
	if w <= 1 {
		for si, q := range selected {
			e.trainOne(si, q)
		}
		return
	}
	e.ensurePool(w)
	e.taskWG.Add(len(selected))
	for si, q := range selected {
		e.taskCh <- trainTask{si: si, q: q}
	}
	e.taskWG.Wait()
}

// trainOne trains client q into result slot si using the engine's round
// scratch (broadcast, flats, losses, wall).
func (e *Engine) trainOne(si, q int) {
	cfg := &e.cfg
	if e.wall != nil {
		// Wall-clock span for obs telemetry only: it never feeds a
		// decision, a record, or the model, so replay determinism
		// holds (the conformance tests pin this).
		t0 := time.Now() //helcfl:allow(nondeterminism) telemetry-only span; no control-flow or model effect
		e.flats[si], e.losses[si] = e.clients[q].LocalUpdateProx(e.broadcast, cfg.LR, cfg.LocalSteps, cfg.ProxMu)
		e.wall[si] = time.Since(t0).Seconds() //helcfl:allow(nondeterminism) telemetry-only span; no control-flow or model effect
		return
	}
	e.flats[si], e.losses[si] = e.clients[q].LocalUpdateProx(e.broadcast, cfg.LR, cfg.LocalSteps, cfg.ProxMu)
}

// ensurePool lazily spawns the persistent local-update workers. The channel
// is buffered to the fleet size, so a whole round enqueues without blocking
// even before any worker wakes. The pool lives until Result finalizes the
// campaign (drainPool); each round synchronizes through taskWG.
func (e *Engine) ensurePool(w int) {
	if e.taskCh != nil {
		return
	}
	e.taskCh = make(chan trainTask, len(e.cfg.Devices))
	for i := 0; i < w; i++ {
		go e.poolWorker()
	}
}

func (e *Engine) poolWorker() {
	for t := range e.taskCh {
		e.trainOne(t.si, t.q)
		e.taskWG.Done()
	}
}

// drainPool stops the persistent workers; idempotent.
func (e *Engine) drainPool() {
	if e.taskCh != nil {
		close(e.taskCh)
		e.taskCh = nil
	}
}

// growFloats returns buf resized to n elements, reusing its backing array
// when capacity allows. Contents are unspecified; callers overwrite.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growInts is growFloats for index buffers.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growSliceTable is growFloats for upload tables.
func growSliceTable(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		return make([][]float64, n)
	}
	return buf[:n]
}

// quantizeF32Into round-trips src through float32 — the upload wire
// precision — into a reused destination buffer, returned (possibly regrown).
func quantizeF32Into(dst, src []float64) []float64 {
	dst = growFloats(dst, len(src))
	for i, v := range src {
		dst[i] = float64(float32(v))
	}
	return dst
}

// quantizeF32InPlace round-trips flat through float32 in place.
func quantizeF32InPlace(flat []float64) {
	for i, v := range flat {
		flat[i] = float64(float32(v))
	}
}
