package fl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// EngineState is a complete snapshot of an Engine taken at a round
// boundary: everything Algorithm 1 accumulates across rounds — global model
// parameters (full float64 precision, so the resumed FedAvg trajectory is
// bit-identical), the RNG stream position, battery ledgers, convergence
// bookkeeping, and the completed-round records. Together with the planner's
// exported state (PlannerState) it is sufficient to reconstruct an engine
// whose remaining rounds are indistinguishable from never having stopped.
type EngineState struct {
	// Round is the next round the engine would execute.
	Round int
	// RNGUsed counts post-initialization Float64 draws (dropout sampling);
	// restore replays the seeded stream to this position.
	RNGUsed uint64
	// GlobalParams is the flat global parameter vector, exact.
	GlobalParams []float64
	// CumTime and CumEnergy accumulate the executed rounds' costs.
	CumTime, CumEnergy float64
	// BestLoss and SinceImproved are the convergence-patience bookkeeping.
	// BestLoss is stored as IEEE bits so +Inf (no evaluation yet) survives
	// every encoder exactly.
	BestLossBits  uint64
	SinceImproved int
	// SpentJ is the per-device lifetime energy ledger (battery faults).
	SpentJ []float64
	// Records are the completed rounds.
	Records []RoundRecord
	// Result roll-up captured so far.
	BestAccuracy, FinalAccuracy float64
	StoppedByDeadline           bool
	ReachedTarget               bool
	Converged                   bool
	HaltedByDeadFleet           bool
	// Stopped mirrors the engine's exit latch.
	Stopped bool
	// PlannerState is the planner's exported cross-round state (nil when the
	// planner is stateless or does not implement StatefulPlanner).
	PlannerState []byte
}

// Snapshot captures the engine's campaign state between rounds. When the
// configured planner implements StatefulPlanner its state is embedded, so
// a restore reproduces the exact selection sequence; planners that keep
// hidden state without implementing StatefulPlanner cannot be resumed
// deterministically (the HELCFL and FedCS planners both can).
func (e *Engine) Snapshot() (*EngineState, error) {
	sp := e.cfg.Trace.Start(e.runSp.Ref(), "fl.snapshot")
	defer sp.End()
	st := &EngineState{
		Round:             e.round,
		RNGUsed:           e.rngUsed,
		GlobalParams:      e.global.GetFlatParams(),
		CumTime:           e.cumTime,
		CumEnergy:         e.cumEnergy,
		BestLossBits:      math.Float64bits(e.bestLoss),
		SinceImproved:     e.sinceImproved,
		SpentJ:            append([]float64(nil), e.spentJ...),
		Records:           copyRecords(e.res.Records),
		BestAccuracy:      e.res.BestAccuracy,
		FinalAccuracy:     e.res.FinalAccuracy,
		StoppedByDeadline: e.res.StoppedByDeadline,
		ReachedTarget:     e.res.ReachedTarget,
		Converged:         e.res.Converged,
		HaltedByDeadFleet: e.res.HaltedByDeadFleet,
		Stopped:           e.stopped,
	}
	if sp, ok := e.cfg.Planner.(StatefulPlanner); ok {
		raw, err := sp.ExportState()
		if err != nil {
			return nil, fmt.Errorf("fl: export planner state: %w", err)
		}
		st.PlannerState = raw
	}
	return st, nil
}

// RestoreEngine rebuilds an engine from a configuration and a snapshot.
// cfg must describe the same campaign the snapshot was taken from (same
// spec, fleet, data, seed, and a freshly constructed planner of the same
// kind); the restored engine then executes the remaining rounds
// bit-identically to the engine that produced the snapshot.
func RestoreEngine(cfg Config, st *EngineState) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("fl: nil engine state")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := newEngineState(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.GlobalParams) != e.global.NumParams() {
		return nil, fmt.Errorf("fl: state has %d params, model has %d", len(st.GlobalParams), e.global.NumParams())
	}
	if len(st.SpentJ) != len(cfg.Devices) {
		return nil, fmt.Errorf("fl: state has %d battery ledgers for fleet of %d", len(st.SpentJ), len(cfg.Devices))
	}
	if st.Round < 0 || st.Round > cfg.MaxRounds {
		return nil, fmt.Errorf("fl: state round %d outside budget %d", st.Round, cfg.MaxRounds)
	}
	e.global.SetFlatParams(append([]float64(nil), st.GlobalParams...))
	// Re-position the seeded RNG stream: model initialization already
	// consumed its prefix in newEngineState; burn the recorded dropout draws.
	for i := uint64(0); i < st.RNGUsed; i++ {
		e.rng.Float64()
	}
	e.rngUsed = st.RNGUsed
	e.round = st.Round
	e.cumTime = st.CumTime
	e.cumEnergy = st.CumEnergy
	e.bestLoss = math.Float64frombits(st.BestLossBits)
	e.sinceImproved = st.SinceImproved
	e.spentJ = append([]float64(nil), st.SpentJ...)
	e.stopped = st.Stopped
	e.res.Records = copyRecords(st.Records)
	e.res.BestAccuracy = st.BestAccuracy
	e.res.FinalAccuracy = st.FinalAccuracy
	e.res.StoppedByDeadline = st.StoppedByDeadline
	e.res.ReachedTarget = st.ReachedTarget
	e.res.Converged = st.Converged
	e.res.HaltedByDeadFleet = st.HaltedByDeadFleet
	if st.PlannerState != nil {
		sp, ok := cfg.Planner.(StatefulPlanner)
		if !ok {
			return nil, fmt.Errorf("fl: snapshot carries planner state but planner %q cannot import it", cfg.Planner.Name())
		}
		if err := sp.ImportState(st.PlannerState); err != nil {
			return nil, fmt.Errorf("fl: import planner state: %w", err)
		}
	}
	e.emitRunStart()
	e.startRunSpan()
	return e, nil
}

func copyRecords(recs []RoundRecord) []RoundRecord {
	out := make([]RoundRecord, len(recs))
	for i, r := range recs {
		r.Selected = append([]int(nil), r.Selected...)
		r.Freqs = append([]float64(nil), r.Freqs...)
		out[i] = r
	}
	return out
}

// Marshal encodes the state for embedding in a checkpoint file payload
// (see internal/checkpoint for the durable framing). It deliberately does
// not implement encoding.BinaryMarshaler — gob would call it back from
// inside Encode and recurse forever.
func (st *EngineState) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("fl: encode engine state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalEngineState decodes a Marshal payload.
func UnmarshalEngineState(raw []byte) (*EngineState, error) {
	var st EngineState
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err != nil {
		return nil, fmt.Errorf("fl: decode engine state: %w", err)
	}
	return &st, nil
}
