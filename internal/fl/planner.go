// Package fl is the federated-learning engine: the FLCC-side training loop
// of Algorithm 1, client-side local updates (Eq. 3), FedAvg aggregation
// (Eq. 18), evaluation, and the separated-learning (SL) baseline engine.
package fl

import (
	"fmt"

	"helcfl/internal/device"
	"helcfl/internal/obs/span"
)

// Planner makes the per-round FLCC scheduling decision: which users
// participate and at which CPU frequencies they run (Algorithm 1, line 4).
// Implementations include the HELCFL scheduler (Algorithms 2+3) and the
// baseline selection/frequency combinations.
type Planner interface {
	// Name identifies the scheme in reports.
	Name() string
	// PlanRound returns the selected user indices and their operating
	// frequencies for training round j (0-based). The slices align 1:1.
	// Planners may keep state across rounds (e.g. HELCFL's appearance
	// counters), so rounds must be requested in order.
	PlanRound(j int) (selected []int, freqs []float64)
}

// Observer is an optional Planner extension: planners that implement it
// receive per-round training feedback (the selected users and their final
// local losses) after each aggregation, enabling statistical-utility
// selection (e.g. the loss-aware HELCFL extension).
type Observer interface {
	// ObserveRound reports round j's selected users and their local losses.
	ObserveRound(j int, selected []int, losses []float64)
}

// DecisionDetailer is an optional Planner extension: planners that can
// report Algorithm 2's internal decision state expose it here so the
// engine's event stream (Config.Sink) can include it.
type DecisionDetailer interface {
	// SelectionDetail returns the fleet-wide Eq. (20) utility vector
	// computed at the last PlanRound and the current α_q appearance
	// counters; either may be nil when unavailable.
	SelectionDetail() (utilities []float64, appearances []int)
}

// TracedPlanner is an optional Planner extension: planners whose decision
// has internally separable phases (HELCFL's Algorithm 2 selection and
// Algorithm 3 DVFS solve) receive the engine's span recorder so those
// phases appear as children of the round's plan span. The engine calls
// SetTrace before every PlanRound with that round's plan-span ref; it is
// never called when tracing is off.
type TracedPlanner interface {
	SetTrace(rec *span.Recorder, parent span.Ref)
}

// EdgeTopology is an optional Planner extension declaring a hierarchical
// aggregation tier: users upload to one of NumEdges edge aggregators (their
// TDMA uplinks run in parallel) and the FLCC performs a second-level
// weighted average over the edge models. A planner implementing it switches
// the engine's round simulation to sim.Scratch.SimulateRoundEdges and its
// aggregation to FedAvgHierInto; with NumEdges() == 1 both are bit-identical
// to the flat path.
type EdgeTopology interface {
	// NumEdges returns E ≥ 1, the number of edge aggregators.
	NumEdges() int
	// EdgeOf maps a fleet index to its edge aggregator in [0, NumEdges()).
	EdgeOf(q int) int
}

// StatefulPlanner is an optional Planner extension for checkpoint/resume:
// planners whose decisions depend on cross-round mutable state (the HELCFL
// α_q decay counters, loss-feedback memory) expose it as an opaque blob so
// an engine snapshot can restore the exact selection sequence. Stateless
// planners (FedCS, fixed policies) need not implement it.
type StatefulPlanner interface {
	Planner
	// ExportState serializes the planner's cross-round mutable state.
	ExportState() ([]byte, error)
	// ImportState restores a previously exported state into a freshly
	// constructed planner of the same kind and fleet.
	ImportState([]byte) error
}

// Composed glues an independent selection strategy and frequency policy
// into a Planner; most baselines are expressed this way.
type Composed struct {
	// Label names the combination.
	Label string
	// Devices is the full fleet the Select indices refer to.
	Devices []*device.Device
	// Select returns the users participating in round j.
	Select func(j int) []int
	// Frequencies assigns an operating frequency to each selected device.
	Frequencies func(selected []*device.Device) []float64
}

// Name implements Planner.
func (c *Composed) Name() string { return c.Label }

// PlanRound implements Planner.
func (c *Composed) PlanRound(j int) ([]int, []float64) {
	sel := c.Select(j)
	devs := make([]*device.Device, len(sel))
	for i, q := range sel {
		if q < 0 || q >= len(c.Devices) {
			panic(fmt.Sprintf("fl: planner %q selected user %d outside fleet of %d", c.Label, q, len(c.Devices)))
		}
		devs[i] = c.Devices[q]
	}
	return sel, c.Frequencies(devs)
}
