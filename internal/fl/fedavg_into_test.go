package fl

import (
	"math"
	"math/rand"
	"testing"
)

// TestFedAvgIntoMatchesFedAvg pins bit-identity between the allocating and
// buffer-reusing aggregation forms across randomized upload sets, with the
// destination deliberately dirty to prove it is fully overwritten.
func TestFedAvgIntoMatchesFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dst := make([]float64, 64)
	for trial := 0; trial < 50; trial++ {
		k := rng.Intn(6) + 1
		uploads := make([][]float64, k)
		weights := make([]int, k)
		for i := range uploads {
			u := make([]float64, 64)
			for j := range u {
				u[j] = rng.NormFloat64() * 10
			}
			uploads[i] = u
			weights[i] = rng.Intn(30) + 1
		}
		want := FedAvg(uploads, weights)
		for j := range dst {
			dst[j] = math.NaN() // poison: FedAvgInto must overwrite every slot
		}
		FedAvgInto(dst, uploads, weights)
		for j := range want {
			if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d param %d: got %g, want %g", trial, j, dst[j], want[j])
			}
		}
	}
}

// TestFedAvgIntoValidation checks the destination-length guard on top of
// the panics shared with FedAvg.
func TestFedAvgIntoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short destination did not panic")
		}
	}()
	FedAvgInto(make([]float64, 3), [][]float64{{1, 2}}, []int{1})
}
