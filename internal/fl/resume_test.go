package fl_test

// Engine checkpoint/resume conformance: an engine snapshotted at an
// arbitrary round boundary and restored into a fresh process-equivalent
// (new planner, new clients, new RNG) must finish the campaign with a
// trajectory — every RoundRecord field, the final model, the exit flags —
// bit-identical to the engine that never stopped. This is the in-process
// half of the ISSUE 3 acceptance bar; internal/deploy covers the
// networked half.

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/core"
	"helcfl/internal/dataset"
	"helcfl/internal/device"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/selection"
	"helcfl/internal/wireless"
)

// resumeEnv rebuilds an identical campaign config with a fresh planner per
// engine, exactly as a restarted process would.
type resumeEnv struct {
	spec     nn.ModelSpec
	userData []*dataset.Dataset
	test     *dataset.Dataset
	users    int
	rounds   int
}

func newResumeEnv(t *testing.T) *resumeEnv {
	t.Helper()
	const users = 8
	synth := dataset.GenerateSynth(dataset.SynthConfig{
		Classes: 3, C: 1, H: 4, W: 4, TrainN: 24 * users, TestN: 60, Noise: 0.8, Seed: 21,
	})
	part := dataset.PartitionIID(synth.Train, users, rand.New(rand.NewSource(22)))
	return &resumeEnv{
		spec:     nn.ModelSpec{Kind: "logistic", InC: 1, H: 4, W: 4, Classes: 3},
		userData: dataset.UserDatasets(synth.Train, part),
		test:     synth.Test,
		users:    users,
		rounds:   10,
	}
}

func (e *resumeEnv) devices() []*device.Device {
	rng := rand.New(rand.NewSource(23))
	devs := make([]*device.Device, e.users)
	for q := range devs {
		devs[q] = &device.Device{
			ID:              q,
			NumSamples:      e.userData[q].N(),
			FMin:            device.DefaultFMin,
			FMax:            device.FMaxLow + (device.FMaxHigh-device.FMaxLow)*rng.Float64(),
			CyclesPerSample: device.DefaultCyclesPerSample,
			Kappa:           device.DefaultKappa,
			TxPower:         0.2,
			ChannelGain:     0.5 + rng.Float64(),
		}
	}
	return devs
}

// config builds the full fault-exercising campaign: dropout draws consume
// the RNG stream, batteries exercise the energy ledger, block fading
// exercises the per-round gain path.
func (e *resumeEnv) config(t *testing.T) fl.Config {
	t.Helper()
	devs := e.devices()
	planner, err := selection.NewHELCFL(devs, wireless.DefaultChannel(), 2e5, core.Params{
		Eta: 0.7, Fraction: 0.4, StepsPerRound: 1, Clamp: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fl.Config{
		Spec:             e.spec,
		Devices:          devs,
		Channel:          wireless.DefaultChannel(),
		UserData:         e.userData,
		Test:             e.test,
		Planner:          planner,
		LR:               0.3,
		LocalSteps:       1,
		MaxRounds:        e.rounds,
		DropoutProb:      0.2,
		BatteryCapacityJ: 40,
		Gains:            wireless.BlockFading{Sigma: 0.4, Seed: 31},
		Seed:             77,
	}
}

func recordsBitEqual(t *testing.T, got, want []fl.RoundRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("executed %d rounds, want %d", len(got), len(want))
	}
	f64eq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	for i := range want {
		g, w := got[i], want[i]
		switch {
		case g.Round != w.Round, g.Failed != w.Failed, g.AliveDevices != w.AliveDevices,
			g.Evaluated != w.Evaluated, len(g.Selected) != len(w.Selected):
			t.Fatalf("round %d: structural mismatch: got %+v want %+v", i, g, w)
		}
		for k := range w.Selected {
			if g.Selected[k] != w.Selected[k] || !f64eq(g.Freqs[k], w.Freqs[k]) {
				t.Fatalf("round %d: selection/frequency mismatch at slot %d", i, k)
			}
		}
		for _, pair := range [][2]float64{
			{g.Delay, w.Delay}, {g.Energy, w.Energy}, {g.ComputeEnergy, w.ComputeEnergy},
			{g.UploadEnergy, w.UploadEnergy}, {g.Slack, w.Slack}, {g.CumTime, w.CumTime},
			{g.CumEnergy, w.CumEnergy}, {g.TrainLoss, w.TrainLoss},
			{g.TestLoss, w.TestLoss}, {g.TestAccuracy, w.TestAccuracy},
		} {
			if !f64eq(pair[0], pair[1]) {
				t.Fatalf("round %d: float field diverges: %v vs %v", i, pair[0], pair[1])
			}
		}
	}
}

func modelsBitEqual(t *testing.T, got, want *nn.Sequential) {
	t.Helper()
	g, w := got.GetFlatParams(), want.GetFlatParams()
	if len(g) != len(w) {
		t.Fatalf("param counts differ: %d vs %d", len(g), len(w))
	}
	for i := range w {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("model param %d diverges: %v vs %v", i, g[i], w[i])
		}
	}
}

// TestEngineResumeBitIdentical snapshots at several distinct round
// boundaries — early, middle, and at the final round — serializes the state
// through the binary codec, restores into a fresh engine, and requires the
// completed campaign to be indistinguishable from the uninterrupted one.
func TestEngineResumeBitIdentical(t *testing.T) {
	env := newResumeEnv(t)
	ref, err := fl.Run(env.config(t))
	if err != nil {
		t.Fatal(err)
	}

	for _, split := range []int{1, 4, 7, env.rounds - 1} {
		split := split
		t.Run(map[bool]string{true: "mid", false: "late"}[split < env.rounds/2]+"-split", func(t *testing.T) {
			eng, err := fl.NewEngine(env.config(t))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < split; i++ {
				if ok, err := eng.Step(); err != nil || !ok {
					t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
				}
			}
			st, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// The snapshot must survive its binary codec (the checkpoint file
			// payload) exactly.
			raw, err := st.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			st2, err := fl.UnmarshalEngineState(raw)
			if err != nil {
				t.Fatal(err)
			}

			resumed, err := fl.RestoreEngine(env.config(t), st2)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Round() != split {
				t.Fatalf("resumed at round %d, want %d", resumed.Round(), split)
			}
			for {
				ok, err := resumed.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			res := resumed.Result()
			recordsBitEqual(t, res.Records, ref.Records)
			modelsBitEqual(t, res.Model, ref.Model)
			if res.FinalAccuracy != ref.FinalAccuracy || res.BestAccuracy != ref.BestAccuracy ||
				res.TotalTime != ref.TotalTime || res.TotalEnergy != ref.TotalEnergy ||
				res.HaltedByDeadFleet != ref.HaltedByDeadFleet {
				t.Fatalf("result roll-up diverges: %+v vs %+v", res, ref)
			}
		})
	}
}

// TestRestoreEngineRejectsMismatchedState pins the defensive checks: a
// snapshot from a different fleet or model shape must be refused, and
// planner state must not be silently dropped.
func TestRestoreEngineRejectsMismatchedState(t *testing.T) {
	env := newResumeEnv(t)
	eng, err := fl.NewEngine(env.config(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-model-shape", func(t *testing.T) {
		cfg := env.config(t)
		cfg.Spec = nn.ModelSpec{Kind: "mlp", InC: 1, H: 4, W: 4, Classes: 3, Hidden: []int{8}}
		if _, err := fl.RestoreEngine(cfg, st); err == nil {
			t.Fatal("mismatched model shape accepted")
		}
	})
	t.Run("wrong-fleet-size", func(t *testing.T) {
		cfg := env.config(t)
		bad := *st
		bad.SpentJ = bad.SpentJ[:len(bad.SpentJ)-1]
		if _, err := fl.RestoreEngine(cfg, &bad); err == nil {
			t.Fatal("mismatched fleet size accepted")
		}
	})
	t.Run("round-out-of-budget", func(t *testing.T) {
		cfg := env.config(t)
		bad := *st
		bad.Round = cfg.MaxRounds + 5
		if _, err := fl.RestoreEngine(cfg, &bad); err == nil {
			t.Fatal("out-of-budget round accepted")
		}
	})
	t.Run("nil-state", func(t *testing.T) {
		if _, err := fl.RestoreEngine(env.config(t), nil); err == nil {
			t.Fatal("nil state accepted")
		}
	})
}
