package fl

import (
	"bytes"
	"encoding/gob"
)

// resultWire mirrors Result minus Model for gob transport. The final model
// holds interface-typed layers gob cannot traverse, and no assembler reads
// it — campaign folds consume Records and the scalar summaries only — so a
// Result that crosses a process boundary travels without it. gob keeps
// float64 payloads bit-exact, which is what lets a distributed merge stay
// byte-identical to the in-process run.
type resultWire struct {
	Scheme                           string
	Records                          []RoundRecord
	ModelBits                        float64
	FinalAccuracy, BestAccuracy      float64
	TotalTime, TotalEnergy           float64
	StoppedByDeadline, ReachedTarget bool
	Converged                        bool
	HaltedByDeadFleet                bool
}

// GobEncode implements gob.GobEncoder, dropping Model (see resultWire).
func (r *Result) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(resultWire{
		Scheme:            r.Scheme,
		Records:           r.Records,
		ModelBits:         r.ModelBits,
		FinalAccuracy:     r.FinalAccuracy,
		BestAccuracy:      r.BestAccuracy,
		TotalTime:         r.TotalTime,
		TotalEnergy:       r.TotalEnergy,
		StoppedByDeadline: r.StoppedByDeadline,
		ReachedTarget:     r.ReachedTarget,
		Converged:         r.Converged,
		HaltedByDeadFleet: r.HaltedByDeadFleet,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. The decoded Result has a nil Model.
func (r *Result) GobDecode(data []byte) error {
	var w resultWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*r = Result{
		Scheme:            w.Scheme,
		Records:           w.Records,
		ModelBits:         w.ModelBits,
		FinalAccuracy:     w.FinalAccuracy,
		BestAccuracy:      w.BestAccuracy,
		TotalTime:         w.TotalTime,
		TotalEnergy:       w.TotalEnergy,
		StoppedByDeadline: w.StoppedByDeadline,
		ReachedTarget:     w.ReachedTarget,
		Converged:         w.Converged,
		HaltedByDeadFleet: w.HaltedByDeadFleet,
	}
	return nil
}
