package fl

import (
	"fmt"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
	"helcfl/internal/tensor"
)

// FedAvg aggregates uploaded flat parameter vectors with the weighted mean
// of Eq. (18): M_G ← Σ |D_q|·M_q / Σ |D_q|.
func FedAvg(uploads [][]float64, weights []int) []float64 {
	if len(uploads) == 0 {
		panic("fl: FedAvg with no uploads")
	}
	out := make([]float64, len(uploads[0]))
	FedAvgInto(out, uploads, weights)
	return out
}

// FedAvgInto is FedAvg writing into a caller-owned destination of exactly
// the parameter length — the allocation-free form for round hot loops. dst
// is fully overwritten.
func FedAvgInto(dst []float64, uploads [][]float64, weights []int) {
	if len(uploads) == 0 {
		panic("fl: FedAvg with no uploads")
	}
	if len(uploads) != len(weights) {
		panic(fmt.Sprintf("fl: %d uploads but %d weights", len(uploads), len(weights)))
	}
	n := len(uploads[0])
	if len(dst) != n {
		panic(fmt.Sprintf("fl: FedAvg destination has %d params, want %d", len(dst), n))
	}
	out := dst
	for j := range out {
		out[j] = 0
	}
	totalW := 0.0
	for i, u := range uploads {
		if len(u) != n {
			panic(fmt.Sprintf("fl: upload %d has %d params, want %d", i, len(u), n))
		}
		if weights[i] <= 0 {
			panic(fmt.Sprintf("fl: non-positive weight %d for upload %d", weights[i], i))
		}
		w := float64(weights[i])
		totalW += w
		for j, v := range u {
			out[j] += w * v
		}
	}
	inv := 1 / totalW
	for j := range out {
		out[j] *= inv
	}
}

// HierScratch holds the per-edge accumulators of FedAvgHierInto so the
// engine's round loop reuses them. The zero value is ready to use.
type HierScratch struct {
	sums [][]float64
	wsum []float64
}

// FedAvgHierInto is two-level FedAvg for a hierarchical aggregation tier:
// each edge aggregator e computes the Eq. (18) weighted mean over its own
// uploads (edges[i] names upload i's aggregator), then the FLCC averages
// the E edge models weighted by their total sample counts. The composition
// is algebraically identical to flat FedAvg —
//
//	Σ_e (W_e/W)·(Σ_{i∈e} w_i·M_i / W_e) = Σ_i w_i·M_i / W
//
// — but not bitwise (the float sums associate differently), except for
// E == 1 where share = W/W = 1 exactly and the result is bit-identical to
// FedAvgInto (pinned by test). Edges with no uploads this round simply
// contribute nothing.
func FedAvgHierInto(dst []float64, scratch *HierScratch, uploads [][]float64, weights []int, edges []int, numEdges int) {
	if len(uploads) == 0 {
		panic("fl: FedAvg with no uploads")
	}
	if len(uploads) != len(weights) || len(uploads) != len(edges) {
		panic(fmt.Sprintf("fl: %d uploads but %d weights and %d edge assignments", len(uploads), len(weights), len(edges)))
	}
	if numEdges <= 0 {
		panic(fmt.Sprintf("fl: non-positive edge count %d", numEdges))
	}
	n := len(uploads[0])
	if len(dst) != n {
		panic(fmt.Sprintf("fl: FedAvg destination has %d params, want %d", len(dst), n))
	}
	if len(scratch.sums) < numEdges {
		scratch.sums = make([][]float64, numEdges)
		scratch.wsum = make([]float64, numEdges)
	}
	sums := scratch.sums[:numEdges]
	wsum := scratch.wsum[:numEdges]
	for e := 0; e < numEdges; e++ {
		if len(sums[e]) != n {
			sums[e] = make([]float64, n)
		}
		row := sums[e]
		for j := range row {
			row[j] = 0
		}
		wsum[e] = 0
	}
	// First level: per-edge weighted sums, accumulated in upload order.
	for i, u := range uploads {
		if len(u) != n {
			panic(fmt.Sprintf("fl: upload %d has %d params, want %d", i, len(u), n))
		}
		if weights[i] <= 0 {
			panic(fmt.Sprintf("fl: non-positive weight %d for upload %d", weights[i], i))
		}
		e := edges[i]
		if e < 0 || e >= numEdges {
			panic(fmt.Sprintf("fl: upload %d assigned to edge %d outside [0, %d)", i, e, numEdges))
		}
		w := float64(weights[i])
		wsum[e] += w
		row := sums[e]
		for j, v := range u {
			row[j] += w * v
		}
	}
	totalW := 0.0
	for e := 0; e < numEdges; e++ {
		totalW += wsum[e]
	}
	// Second level: FLCC-side weighted mean of the edge models.
	for j := range dst {
		dst[j] = 0
	}
	for e := 0; e < numEdges; e++ {
		if wsum[e] == 0 {
			continue // edge had no participants this round
		}
		share := wsum[e] / totalW
		invE := 1 / wsum[e]
		row := sums[e]
		for j := range dst {
			dst[j] += share * (row[j] * invE)
		}
	}
}

// Evaluate computes loss and accuracy of a model over a dataset, batching
// the forward passes to bound peak memory. flattenInput selects the (B, D)
// view for dense models.
func Evaluate(m *nn.Sequential, d *dataset.Dataset, flattenInput bool) (loss, accuracy float64) {
	const batch = 256
	lossFn := nn.NewSoftmaxCrossEntropy()
	n := d.N()
	totalLoss := 0.0
	correct := 0.0
	plane := d.SampleDim()
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		bn := end - off
		var x *tensor.Tensor
		if flattenInput {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, plane)
		} else {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, d.Channels(), d.Height(), d.Width())
		}
		labels := d.Labels[off:end]
		logits := m.Forward(x, false)
		totalLoss += lossFn.Forward(logits, labels) * float64(bn)
		correct += nn.Accuracy(logits, labels) * float64(bn)
	}
	return totalLoss / float64(n), correct / float64(n)
}
