package fl

import (
	"fmt"

	"helcfl/internal/dataset"
	"helcfl/internal/nn"
	"helcfl/internal/tensor"
)

// FedAvg aggregates uploaded flat parameter vectors with the weighted mean
// of Eq. (18): M_G ← Σ |D_q|·M_q / Σ |D_q|.
func FedAvg(uploads [][]float64, weights []int) []float64 {
	if len(uploads) == 0 {
		panic("fl: FedAvg with no uploads")
	}
	out := make([]float64, len(uploads[0]))
	FedAvgInto(out, uploads, weights)
	return out
}

// FedAvgInto is FedAvg writing into a caller-owned destination of exactly
// the parameter length — the allocation-free form for round hot loops. dst
// is fully overwritten.
func FedAvgInto(dst []float64, uploads [][]float64, weights []int) {
	if len(uploads) == 0 {
		panic("fl: FedAvg with no uploads")
	}
	if len(uploads) != len(weights) {
		panic(fmt.Sprintf("fl: %d uploads but %d weights", len(uploads), len(weights)))
	}
	n := len(uploads[0])
	if len(dst) != n {
		panic(fmt.Sprintf("fl: FedAvg destination has %d params, want %d", len(dst), n))
	}
	out := dst
	for j := range out {
		out[j] = 0
	}
	totalW := 0.0
	for i, u := range uploads {
		if len(u) != n {
			panic(fmt.Sprintf("fl: upload %d has %d params, want %d", i, len(u), n))
		}
		if weights[i] <= 0 {
			panic(fmt.Sprintf("fl: non-positive weight %d for upload %d", weights[i], i))
		}
		w := float64(weights[i])
		totalW += w
		for j, v := range u {
			out[j] += w * v
		}
	}
	inv := 1 / totalW
	for j := range out {
		out[j] *= inv
	}
}

// Evaluate computes loss and accuracy of a model over a dataset, batching
// the forward passes to bound peak memory. flattenInput selects the (B, D)
// view for dense models.
func Evaluate(m *nn.Sequential, d *dataset.Dataset, flattenInput bool) (loss, accuracy float64) {
	const batch = 256
	lossFn := nn.NewSoftmaxCrossEntropy()
	n := d.N()
	totalLoss := 0.0
	correct := 0.0
	plane := d.SampleDim()
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		bn := end - off
		var x *tensor.Tensor
		if flattenInput {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, plane)
		} else {
			x = tensor.FromSlice(d.X.Data()[off*plane:end*plane], bn, d.Channels(), d.Height(), d.Width())
		}
		labels := d.Labels[off:end]
		logits := m.Forward(x, false)
		totalLoss += lossFn.Forward(logits, labels) * float64(bn)
		correct += nn.Accuracy(logits, labels) * float64(bn)
	}
	return totalLoss / float64(n), correct / float64(n)
}
