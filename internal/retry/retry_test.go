package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(_ context.Context, attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return Transient(fmt.Errorf("flaky %d", calls))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("made %d calls, want 3", calls)
	}
}

func TestDoPermanentErrorStopsImmediately(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Microsecond}
	boom := errors.New("boom")
	calls := 0
	err := p.Do(context.Background(), func(context.Context, int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("made %d calls, want 1", calls)
	}
}

func TestDoExhaustionReportsAttemptsAndLastCause(t *testing.T) {
	p := Policy{MaxRetries: 2, Base: time.Microsecond}
	err := p.Do(context.Background(), func(_ context.Context, attempt int) error {
		return Transient(fmt.Errorf("attempt %d", attempt))
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("got %T (%v), want *ExhaustedError", err, err)
	}
	if ex.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", ex.Attempts)
	}
	if got := ex.Last.Error(); got != "attempt 2" {
		t.Fatalf("Last = %q, want final attempt's cause", got)
	}
}

func TestDoZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), func(context.Context, int) error {
		calls++
		return Transient(errors.New("nope"))
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 1 {
		t.Fatalf("got %v, want single-attempt exhaustion", err)
	}
	if calls != 1 {
		t.Fatalf("made %d calls, want 1", calls)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxRetries: 100, Base: time.Hour} // would block forever without ctx
	calls := 0
	err := p.Do(ctx, func(context.Context, int) error {
		calls++
		cancel()
		return Transient(errors.New("transient, but ctx died"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("made %d calls, want 1", calls)
	}
}

func TestTransientNilStaysNil(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) should stay nil")
	}
}

func TestIsTransientSeesThroughWrapping(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", Transient(errors.New("cause")))
	if !IsTransient(err) {
		t.Fatal("wrapped transient not detected")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error misclassified as transient")
	}
}

func TestDelayDoublesJittersAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 80 * time.Millisecond,
		5: 80 * time.Millisecond, // capped
	} {
		if got := p.Delay(attempt); got != want {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, want)
		}
	}
	// Overflowed shifts cap instead of going negative.
	if got := p.Delay(64); got != 80*time.Millisecond {
		t.Fatalf("overflowed Delay = %v, want cap", got)
	}
	// Jitter keeps the delay in [d/2, d] and is reproducible from the seed.
	jp := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: rand.New(rand.NewSource(7))}
	ref := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: rand.New(rand.NewSource(7))}
	for attempt := 1; attempt <= 6; attempt++ {
		d := jp.Delay(attempt)
		plain := p.Delay(attempt)
		if d < plain/2 || d > plain {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", attempt, d, plain/2, plain)
		}
		if ref.Delay(attempt) != d {
			t.Fatalf("jittered delay not reproducible from seed at attempt %d", attempt)
		}
	}
}

func TestSleepReturnsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Policy{Base: time.Hour}.Sleep(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
