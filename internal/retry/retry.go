// Package retry is the shared jittered-exponential-backoff retry loop used
// by every HELCFL network client: the deploy device client (retrying
// register/poll/upload against the FLCC) and the fleet worker (retrying
// lease/heartbeat/complete against the campaign coordinator). Both sides of
// the system retry transient failures the same way — exponential delay
// doubling from Base up to Cap, with the upper half jittered by a seeded
// generator so a fleet retrying the same outage does not stampede in
// lockstep — and both classify exhaustion the same way, so keeping one copy
// here is what stops the two loops drifting apart.
//
// Usage: the per-attempt function reports a retryable failure by wrapping
// its cause with Transient; any other error is permanent and returned
// immediately. When the attempt budget runs out, Do returns an
// *ExhaustedError carrying the final transient cause — callers map it to
// their own sentinel (e.g. deploy.ErrUnavailable) with errors.As.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Defaults applied by Policy when the corresponding field is zero.
const (
	// DefaultBase is the delay before the first retry.
	DefaultBase = 10 * time.Millisecond
	// DefaultCap bounds the exponential growth.
	DefaultCap = 2 * time.Second
)

// Policy configures one retry loop. The zero value retries nothing (a
// single attempt) with default backoff timing.
type Policy struct {
	// MaxRetries is how many extra attempts follow the first failure; 0
	// means the first failure is final.
	MaxRetries int
	// Base is the delay before the first retry; it doubles per retry.
	// Defaults to DefaultBase.
	Base time.Duration
	// Cap bounds the exponential delay growth. Defaults to DefaultCap.
	Cap time.Duration
	// Jitter, when non-nil, randomizes the upper half of each delay
	// (d/2 + rand[0, d/2]). Seed it per client so a fleet's retry schedule
	// is reproducible yet decorrelated. Nil keeps the full deterministic
	// delay.
	Jitter *rand.Rand
}

// transientError marks a retryable failure.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

// Unwrap exposes the cause, so errors.Is/As see through the marker.
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as retryable: Do will back off and try again instead
// of returning it. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries the Transient marker.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// ExhaustedError reports that every attempt failed transiently. Unwrap
// exposes the final attempt's cause.
type ExhaustedError struct {
	// Attempts is the total number of attempts made (1 + MaxRetries).
	Attempts int
	// Last is the final transient cause, unwrapped from its marker.
	Last error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("retry: failed after %d attempt(s): %v", e.Attempts, e.Last)
}

// Unwrap exposes the final cause to errors.Is/As.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// Do runs fn until it succeeds, fails permanently, or the attempt budget is
// exhausted. fn receives the 0-based attempt index (retries are separate
// requests on the wire and deserve separate attribution — spans, logs).
// A Transient-wrapped error triggers a backoff sleep and another attempt;
// any other error returns immediately. Context cancellation aborts the loop
// with ctx.Err(), both between attempts and during a backoff sleep.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context, attempt int) error) error {
	var last error
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := p.Sleep(ctx, attempt); err != nil {
				return err
			}
		}
		err := fn(ctx, attempt)
		if err == nil {
			return nil
		}
		var t *transientError
		if !errors.As(err, &t) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		last = t.err
	}
	return &ExhaustedError{Attempts: p.MaxRetries + 1, Last: last}
}

// Sleep blocks for the backoff delay before retry attempt (1-based): Base
// doubling per attempt, capped at Cap (overflow also caps), with the upper
// half jittered when a Jitter source is set. Returns early with ctx.Err()
// on cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	timer := time.NewTimer(p.Delay(attempt))
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Delay computes the backoff duration before retry attempt (1-based)
// without sleeping. Exposed so callers can report or test the schedule.
func (p Policy) Delay(attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = DefaultBase
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	if p.Jitter != nil {
		d = d/2 + time.Duration(p.Jitter.Int63n(int64(d/2)+1))
	}
	return d
}
