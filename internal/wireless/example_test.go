package wireless_test

import (
	"fmt"

	"helcfl/internal/wireless"
)

// The Fig. 1 scenario: user 2 finishes computing while user 1 still holds
// the TDMA channel and must stop and wait — the slack HELCFL's Algorithm 3
// converts into DVFS energy savings.
func ExampleScheduleTDMA() {
	slots, makespan := wireless.ScheduleTDMA([]wireless.UploadRequest{
		{User: 1, ComputeDone: 1.0, Duration: 2.0},
		{User: 2, ComputeDone: 2.0, Duration: 1.0},
	})
	for _, s := range slots {
		fmt.Printf("user %d uploads [%.1f, %.1f] after waiting %.1f\n", s.User, s.Start, s.End, s.Wait)
	}
	fmt.Printf("round makespan %.1f\n", makespan)
	// Output:
	// user 1 uploads [1.0, 3.0] after waiting 0.0
	// user 2 uploads [3.0, 4.0] after waiting 1.0
	// round makespan 4.0
}

func ExampleChannel_UploadRate() {
	ch := wireless.Channel{BandwidthHz: 2e6, NoisePower: 0.1}
	// Eq. (6): R = Z·log2(1 + p·h²/N0) with p = 0.2 W, h = 1.
	fmt.Printf("%.0f bit/s\n", ch.UploadRate(0.2, 1.0))
	// Output:
	// 3169925 bit/s
}
