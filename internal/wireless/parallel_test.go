package wireless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleParallelOneChannelMatchesTDMA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]UploadRequest, 8)
	for i := range reqs {
		reqs[i] = UploadRequest{User: i, ComputeDone: 5 * rng.Float64(), Duration: 0.2 + rng.Float64()}
	}
	_, serial := ScheduleTDMA(reqs)
	_, parallel := ScheduleParallel(reqs, 1)
	if math.Abs(serial-parallel) > 1e-12 {
		t.Fatalf("k=1 parallel makespan %g != TDMA %g", parallel, serial)
	}
}

func TestScheduleParallelTwoChannels(t *testing.T) {
	reqs := []UploadRequest{
		{User: 0, ComputeDone: 0, Duration: 4},
		{User: 1, ComputeDone: 0, Duration: 4},
		{User: 2, ComputeDone: 0, Duration: 4},
	}
	slots, makespan := ScheduleParallel(reqs, 2)
	// Users 0 and 1 start immediately; user 2 waits for a channel.
	if slots[0].Start != 0 || slots[1].Start != 0 {
		t.Fatalf("first two slots = %+v %+v", slots[0], slots[1])
	}
	if slots[2].Start != 4 || slots[2].Wait != 4 {
		t.Fatalf("third slot = %+v", slots[2])
	}
	if makespan != 8 {
		t.Fatalf("makespan = %g, want 8", makespan)
	}
}

func TestScheduleParallelManyChannelsNoWait(t *testing.T) {
	reqs := []UploadRequest{
		{User: 0, ComputeDone: 1, Duration: 2},
		{User: 1, ComputeDone: 2, Duration: 2},
		{User: 2, ComputeDone: 3, Duration: 2},
	}
	slots, makespan := ScheduleParallel(reqs, 3)
	for _, s := range slots {
		if s.Wait != 0 {
			t.Fatalf("with k ≥ n no upload should wait: %+v", s)
		}
	}
	if makespan != 5 {
		t.Fatalf("makespan = %g, want 5", makespan)
	}
}

func TestScheduleParallelEmptyAndBadArgs(t *testing.T) {
	if slots, mk := ScheduleParallel(nil, 2); slots != nil || mk != 0 {
		t.Fatal("empty schedule must be nil/0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for k=0")
			}
		}()
		ScheduleParallel([]UploadRequest{{User: 0, ComputeDone: 0, Duration: 1}}, 0)
	}()
}

// Property: at most k uploads overlap at any instant, causality holds, and
// adding channels never lengthens the makespan (same durations).
func TestScheduleParallelInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%12 + 1
		k := int(kRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]UploadRequest, n)
		for i := range reqs {
			reqs[i] = UploadRequest{User: i, ComputeDone: 6 * rng.Float64(), Duration: 0.2 + 2*rng.Float64()}
		}
		slots, makespan := ScheduleParallel(reqs, k)
		if len(slots) != n {
			return false
		}
		maxEnd := 0.0
		for i, s := range slots {
			if s.Wait < -1e-12 {
				return false
			}
			if s.End > maxEnd {
				maxEnd = s.End
			}
			// Concurrency bound: count slots overlapping s's start.
			overlap := 0
			for j, o := range slots {
				if j == i {
					continue
				}
				if o.Start <= s.Start && s.Start < o.End-1e-12 {
					overlap++
				}
			}
			if overlap >= k {
				return false
			}
		}
		if math.Abs(maxEnd-makespan) > 1e-9 {
			return false
		}
		_, mkMore := ScheduleParallel(reqs, k+1)
		return mkMore <= makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The rate/parallelism trade-off: splitting Z into k sub-channels scales
// every duration by k. For staggered arrivals the serial full-rate channel
// can win; for simultaneous arrivals the outcomes tie (work conservation).
func TestParallelSplitTradeOff(t *testing.T) {
	reqs := []UploadRequest{
		{User: 0, ComputeDone: 0, Duration: 1},
		{User: 1, ComputeDone: 0, Duration: 1},
		{User: 2, ComputeDone: 0, Duration: 1},
		{User: 3, ComputeDone: 0, Duration: 1},
	}
	_, serial := ScheduleTDMA(reqs)
	// Split into 2 sub-channels: durations double.
	half := make([]UploadRequest, len(reqs))
	for i, r := range reqs {
		half[i] = UploadRequest{User: r.User, ComputeDone: r.ComputeDone, Duration: r.Duration * 2}
	}
	_, split := ScheduleParallel(half, 2)
	if math.Abs(serial-split) > 1e-12 {
		t.Fatalf("simultaneous arrivals: serial %g vs split %g, want equal", serial, split)
	}
	// Staggered arrivals: the serial channel finishes the early upload
	// before the late one arrives; splitting wastes rate.
	stag := []UploadRequest{
		{User: 0, ComputeDone: 0, Duration: 1},
		{User: 1, ComputeDone: 5, Duration: 1},
	}
	_, serialStag := ScheduleTDMA(stag)
	stagHalf := []UploadRequest{
		{User: 0, ComputeDone: 0, Duration: 2},
		{User: 1, ComputeDone: 5, Duration: 2},
	}
	_, splitStag := ScheduleParallel(stagHalf, 2)
	if splitStag <= serialStag {
		t.Fatalf("staggered arrivals: split %g should exceed serial %g", splitStag, serialStag)
	}
}
