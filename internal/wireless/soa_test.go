package wireless

import (
	"math/rand"
	"testing"
)

// TestSoAKernelsMatchScalar pins the SoA kernels bit-identical to the
// scalar Eq. (6)–(8) methods across random channels and link parameters.
func TestSoAKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		ch := Channel{BandwidthHz: 1e5 + 1e7*rng.Float64(), NoisePower: 0.1 + 3*rng.Float64()}
		bits := 1e4 + 1e7*rng.Float64()
		n := 1 + rng.Intn(300)
		p := make([]float64, n)
		g := make([]float64, n)
		for i := range p {
			p[i] = 0.05 + rng.Float64()
			g[i] = 0.2 + 2*rng.Float64()
		}
		rate := make([]float64, n)
		delay := make([]float64, n)
		energy := make([]float64, n)
		ch.UploadRateInto(rate, p, g)
		ch.UploadDelayInto(delay, bits, p, g)
		ch.UploadEnergyInto(energy, bits, p, g)
		for i := range p {
			if rate[i] != ch.UploadRate(p[i], g[i]) {
				t.Fatalf("rate[%d] = %v, scalar = %v", i, rate[i], ch.UploadRate(p[i], g[i]))
			}
			if delay[i] != ch.UploadDelay(bits, p[i], g[i]) {
				t.Fatalf("delay[%d] = %v, scalar = %v", i, delay[i], ch.UploadDelay(bits, p[i], g[i]))
			}
			if energy[i] != ch.UploadEnergy(bits, p[i], g[i]) {
				t.Fatalf("energy[%d] = %v, scalar = %v", i, energy[i], ch.UploadEnergy(bits, p[i], g[i]))
			}
		}
	}
}

func TestSoAKernelPanics(t *testing.T) {
	ch := DefaultChannel()
	mustPanic(t, "ragged", func() { ch.UploadRateInto(make([]float64, 2), make([]float64, 3), make([]float64, 2)) })
	mustPanic(t, "bad payload", func() { ch.UploadDelayInto(make([]float64, 1), 0, []float64{0.2}, []float64{1}) })
	mustPanic(t, "bad gain", func() { ch.UploadRateInto(make([]float64, 1), []float64{0.2}, []float64{0}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
