// Package wireless models the TDMA uplink of the HELCFL MEC system: the
// Shannon-rate model of Eq. (6), the model-upload delay of Eq. (7), the
// communication energy of Eq. (8), and the sequential TDMA upload schedule
// that creates the slack time Algorithm 3 reclaims (Fig. 1).
package wireless

import (
	"fmt"
	"math"
)

// Channel describes the shared uplink.
type Channel struct {
	// BandwidthHz is Z, the total resource blocks of the MEC system
	// expressed as bandwidth (paper: 2 MHz).
	BandwidthHz float64
	// NoisePower is N0, the background noise power.
	NoisePower float64
}

// DefaultChannel returns the paper's setting: Z = 2 MHz with a noise floor
// that, combined with 0.2 W transmit power and unit-order channel gains,
// produces upload rates of a few hundred kbit/s. For the experiment model
// sizes this puts upload delays at the 0.5–5 s scale — comparable to but
// below compute delays, the regime in which both the paper's selection
// speedup and its Fig. 1 slack exist.
func DefaultChannel() Channel {
	return Channel{BandwidthHz: 2e6, NoisePower: 1.5}
}

// Validate reports configuration errors.
func (c Channel) Validate() error {
	if c.BandwidthHz <= 0 {
		return fmt.Errorf("wireless: non-positive bandwidth %g", c.BandwidthHz)
	}
	if c.NoisePower <= 0 {
		return fmt.Errorf("wireless: non-positive noise power %g", c.NoisePower)
	}
	return nil
}

// UploadRate returns R_q = Z·log2(1 + p·h² / N0) in bit/s (Eq. 6).
func (c Channel) UploadRate(txPower, gain float64) float64 {
	if txPower <= 0 || gain <= 0 {
		panic(fmt.Sprintf("wireless: non-positive power %g or gain %g", txPower, gain))
	}
	return c.BandwidthHz * math.Log2(1+txPower*gain*gain/c.NoisePower)
}

// UploadDelay returns T_q^com = C_model / R_q (Eq. 7) for a payload of
// modelBits bits.
func (c Channel) UploadDelay(modelBits, txPower, gain float64) float64 {
	if modelBits <= 0 {
		panic(fmt.Sprintf("wireless: non-positive payload %g bits", modelBits))
	}
	return modelBits / c.UploadRate(txPower, gain)
}

// UploadEnergy returns E_q^com = p·T_q^com (Eq. 8).
func (c Channel) UploadEnergy(modelBits, txPower, gain float64) float64 {
	return txPower * c.UploadDelay(modelBits, txPower, gain)
}

// UploadRequest describes one user's pending upload in a round.
type UploadRequest struct {
	// User identifies the device.
	User int
	// ComputeDone is the simulation time the local update finishes.
	ComputeDone float64
	// Duration is T_q^com, the airtime the upload needs.
	Duration float64
}

// UploadSlot is one scheduled TDMA transmission.
type UploadSlot struct {
	User int
	// Start and End bound the transmission. Start ≥ ComputeDone, and
	// transmissions never overlap.
	Start, End float64
	// Wait is the slack between compute completion and transmission start —
	// the "stop and wait" interval of Fig. 1 that the DVFS scheme converts
	// into lower-frequency computation.
	Wait float64
}

// ScheduleTDMA serializes uploads on the single TDMA uplink in
// first-come-first-served order of compute completion (ties broken by user
// ID for determinism), exactly the discipline in the paper's Fig. 1: when a
// user finishes its update while another user is transmitting, it stops and
// waits.
//
// The returned slots are in transmission order. The second result is the
// round makespan (the time the last upload ends), zero for no requests.
func ScheduleTDMA(reqs []UploadRequest) ([]UploadSlot, float64) {
	if len(reqs) == 0 {
		return nil, 0
	}
	return ScheduleTDMAInto(nil, reqs)
}

// ScheduleTDMAInto is ScheduleTDMA reusing dst's backing array when it is
// large enough, so a caller scheduling every round can amortize the slot
// slice to zero steady-state allocations. The schedule is identical to
// ScheduleTDMA: a stable insertion sort on (ComputeDone, User) produces the
// same permutation as the stable library sort it replaces. Returns the
// (possibly regrown) slot slice and the round makespan.
func ScheduleTDMAInto(dst []UploadSlot, reqs []UploadRequest) ([]UploadSlot, float64) {
	if len(reqs) == 0 {
		return dst[:0], 0
	}
	if cap(dst) < len(reqs) {
		dst = make([]UploadSlot, len(reqs))
	}
	dst = dst[:len(reqs)]
	// Stage each request as a pending slot (Start holds ComputeDone, End
	// holds Duration until the sweep below), insertion-sorting on arrival.
	// Insertion sort shifting only strictly-greater keys is stable, so ties
	// keep input order exactly like sort.SliceStable.
	for i, r := range reqs {
		if r.Duration <= 0 {
			panic(fmt.Sprintf("wireless: non-positive upload duration %g for user %d", r.Duration, r.User))
		}
		dst[i] = UploadSlot{User: r.User, Start: r.ComputeDone, End: r.Duration}
		for k := i; k > 0; k-- {
			p, c := dst[k-1], dst[k]
			if p.Start < c.Start || (p.Start == c.Start && p.User <= c.User) { //helcfl:allow(floatcompare) exact FCFS tie-break on identical compute-done times, same key the stable sort used
				break
			}
			dst[k-1], dst[k] = c, p
		}
	}
	free := 0.0 // time the channel becomes free
	for i := range dst {
		computeDone, dur := dst[i].Start, dst[i].End
		start := computeDone
		if free > start {
			start = free
		}
		dst[i] = UploadSlot{
			User:  dst[i].User,
			Start: start,
			End:   start + dur,
			Wait:  start - computeDone,
		}
		free = dst[i].End
	}
	return dst, free
}

// TotalWait sums the slack across all slots.
func TotalWait(slots []UploadSlot) float64 {
	s := 0.0
	for _, sl := range slots {
		s += sl.Wait
	}
	return s
}
