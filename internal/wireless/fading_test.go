package wireless

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStaticGainsIdentity(t *testing.T) {
	if (StaticGains{}).Gain(5, 7, 1.25) != 1.25 {
		t.Fatal("static gains must pass through")
	}
}

func TestBlockFadingDeterministic(t *testing.T) {
	f := NewBlockFading(0.5, 42)
	a := f.Gain(3, 9, 1.0)
	b := f.Gain(3, 9, 1.0)
	if a != b {
		t.Fatal("same (round,user) must give same gain")
	}
	if f.Gain(4, 9, 1.0) == a && f.Gain(3, 10, 1.0) == a {
		t.Fatal("different blocks should decorrelate")
	}
	g2 := NewBlockFading(0.5, 43)
	if g2.Gain(3, 9, 1.0) == a {
		t.Fatal("different seeds should differ")
	}
}

func TestBlockFadingZeroSigma(t *testing.T) {
	f := NewBlockFading(0, 1)
	if f.Gain(1, 2, 0.7) != 0.7 {
		t.Fatal("σ=0 must be static")
	}
}

func TestBlockFadingNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockFading(-1, 1)
}

func TestBlockFadingUnitMeanAndPositive(t *testing.T) {
	f := NewBlockFading(0.5, 7)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		g := f.Gain(i, 0, 1.0)
		if g <= 0 {
			t.Fatalf("gain %g must be positive", g)
		}
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("fading factor mean %g, want ≈1", mean)
	}
}

// Property: larger σ produces more dispersion.
func TestBlockFadingDispersionGrowsQuick(t *testing.T) {
	spread := func(sigma float64) float64 {
		f := NewBlockFading(sigma, 11)
		s, ss := 0.0, 0.0
		n := 2000
		for i := 0; i < n; i++ {
			g := f.Gain(i, 1, 1.0)
			s += g
			ss += g * g
		}
		mean := s / float64(n)
		return ss/float64(n) - mean*mean
	}
	f := func(seed int64) bool {
		return spread(0.2) < spread(0.8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}
