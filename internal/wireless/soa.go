package wireless

import (
	"fmt"
	"math"
)

// Structure-of-arrays forms of the Eq. (6)–(8) link models: one pass over
// parallel txPower/gain slices (device.Fleet columns) instead of Q scalar
// calls. Each kernel evaluates exactly the scalar method's expression per
// index, so results are bit-identical to the loop it replaces — the
// differential tests in soa_test.go pin this.

// UploadRateInto fills dst[i] = R_i = Z·log2(1 + p_i·h_i² / N0) (Eq. 6).
// dst, txPower, and gain must have equal length.
func (c Channel) UploadRateInto(dst, txPower, gain []float64) {
	checkSoALens(len(dst), len(txPower), len(gain))
	for i := range dst {
		p, h := txPower[i], gain[i]
		if p <= 0 || h <= 0 {
			panic(fmt.Sprintf("wireless: non-positive power %g or gain %g", p, h))
		}
		dst[i] = c.BandwidthHz * math.Log2(1+p*h*h/c.NoisePower)
	}
}

// UploadDelayInto fills dst[i] = T_i^com = C_model / R_i (Eq. 7).
func (c Channel) UploadDelayInto(dst []float64, modelBits float64, txPower, gain []float64) {
	if modelBits <= 0 {
		panic(fmt.Sprintf("wireless: non-positive payload %g bits", modelBits))
	}
	c.UploadRateInto(dst, txPower, gain)
	for i := range dst {
		dst[i] = modelBits / dst[i]
	}
}

// UploadEnergyInto fills dst[i] = E_i^com = p_i·T_i^com (Eq. 8).
func (c Channel) UploadEnergyInto(dst []float64, modelBits float64, txPower, gain []float64) {
	c.UploadDelayInto(dst, modelBits, txPower, gain)
	for i := range dst {
		dst[i] *= txPower[i]
	}
}

func checkSoALens(d, p, g int) {
	if d != p || d != g {
		panic(fmt.Sprintf("wireless: ragged SoA kernel inputs (dst %d, txPower %d, gain %d)", d, p, g))
	}
}
