package wireless

import (
	"fmt"
	"math"
	"math/rand"
)

// GainProcess produces the per-round channel gain of each user. The base
// system uses the static gains measured in the FLCC's initialization phase
// (the paper's assumption); BlockFading models the realistic case where the
// channel drifts between rounds while the scheduler still plans on the
// stale initialization-phase measurements.
type GainProcess interface {
	// Name identifies the process in reports.
	Name() string
	// Gain returns user `user`'s channel gain in round `round`, given its
	// static (initialization-phase) gain.
	Gain(round, user int, static float64) float64
}

// StaticGains is the identity process: the channel never changes.
type StaticGains struct{}

// Name implements GainProcess.
func (StaticGains) Name() string { return "static" }

// Gain implements GainProcess.
func (StaticGains) Gain(round, user int, static float64) float64 { return static }

// BlockFading applies an independent log-normal multiplicative factor per
// (round, user) block: h(t) = h₀ · exp(σ·Z − σ²/2), Z ~ N(0,1), so the
// factor has unit mean. Draws are deterministic in (Seed, round, user).
type BlockFading struct {
	// Sigma is the log-scale standard deviation (0.3–0.8 is moderate to
	// severe fading).
	Sigma float64
	// Seed makes the process reproducible.
	Seed int64
}

// NewBlockFading validates and returns a BlockFading process.
func NewBlockFading(sigma float64, seed int64) BlockFading {
	if sigma < 0 {
		panic(fmt.Sprintf("wireless: negative fading sigma %g", sigma))
	}
	return BlockFading{Sigma: sigma, Seed: seed}
}

// Name implements GainProcess.
func (b BlockFading) Name() string { return fmt.Sprintf("fading(σ=%.2f)", b.Sigma) }

// Gain implements GainProcess.
func (b BlockFading) Gain(round, user int, static float64) float64 {
	if b.Sigma == 0 {
		return static
	}
	// Mix (seed, round, user) into an rng stream; splitmix-style avalanche
	// keeps adjacent blocks uncorrelated.
	z := uint64(b.Seed)*0x9E3779B97F4A7C15 ^ uint64(round)*0xBF58476D1CE4E5B9 ^ uint64(user)*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	rng := rand.New(rand.NewSource(int64(z >> 1)))
	factor := math.Exp(b.Sigma*rng.NormFloat64() - b.Sigma*b.Sigma/2)
	return static * factor
}
