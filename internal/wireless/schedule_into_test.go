package wireless

import (
	"math"
	"math/rand"
	"testing"
)

// TestScheduleTDMAIntoMatchesScheduleTDMA is the differential gate for the
// insertion-sort scheduler: across randomized request sets — including
// heavy ComputeDone ties, which exercise the stable tie-break — the
// buffer-reusing form must produce the bit-identical schedule to the
// original stable-sort implementation it replaced.
func TestScheduleTDMAIntoMatchesScheduleTDMA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var buf []UploadSlot
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40) + 1
		reqs := make([]UploadRequest, n)
		for i := range reqs {
			// Coarse grid of compute-done times forces frequent exact ties.
			reqs[i] = UploadRequest{
				User:        rng.Intn(n), // duplicate users allowed
				ComputeDone: float64(rng.Intn(5)),
				Duration:    rng.Float64() + 0.01,
			}
		}
		wantSlots, wantMk := ScheduleTDMA(reqs)
		gotSlots, gotMk := ScheduleTDMAInto(buf, reqs)
		buf = gotSlots // reuse across trials: growth must not change results
		if math.Float64bits(gotMk) != math.Float64bits(wantMk) {
			t.Fatalf("trial %d: makespan %g, want %g", trial, gotMk, wantMk)
		}
		if len(gotSlots) != len(wantSlots) {
			t.Fatalf("trial %d: %d slots, want %d", trial, len(gotSlots), len(wantSlots))
		}
		for i := range wantSlots {
			g, w := gotSlots[i], wantSlots[i]
			if g.User != w.User ||
				math.Float64bits(g.Start) != math.Float64bits(w.Start) ||
				math.Float64bits(g.End) != math.Float64bits(w.End) ||
				math.Float64bits(g.Wait) != math.Float64bits(w.Wait) {
				t.Fatalf("trial %d slot %d: got %+v, want %+v", trial, i, g, w)
			}
		}
	}
}

// TestScheduleTDMAIntoReuse pins the allocation contract: once grown, the
// slot buffer is reused with zero heap allocations per call.
func TestScheduleTDMAIntoReuse(t *testing.T) {
	reqs := make([]UploadRequest, 32)
	for i := range reqs {
		reqs[i] = UploadRequest{User: i, ComputeDone: float64(32 - i), Duration: 0.5}
	}
	buf, _ := ScheduleTDMAInto(nil, reqs)
	n := testing.AllocsPerRun(20, func() {
		buf, _ = ScheduleTDMAInto(buf, reqs)
	})
	if n != 0 {
		t.Errorf("warm ScheduleTDMAInto allocates %v times, want 0", n)
	}
	if got, _ := ScheduleTDMAInto(buf[:0], nil); len(got) != 0 {
		t.Fatalf("empty request set returned %d slots", len(got))
	}
}
