package wireless

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUploadRateEq6(t *testing.T) {
	c := Channel{BandwidthHz: 2e6, NoisePower: 0.1}
	// R = Z log2(1 + p h²/N0) = 2e6·log2(1 + 0.2·1/0.1) = 2e6·log2(3).
	want := 2e6 * math.Log2(3)
	if got := c.UploadRate(0.2, 1.0); math.Abs(got-want) > 1e-6 {
		t.Fatalf("UploadRate = %g, want %g", got, want)
	}
}

func TestUploadRateMonotoneInGain(t *testing.T) {
	c := DefaultChannel()
	if c.UploadRate(0.2, 0.5) >= c.UploadRate(0.2, 1.5) {
		t.Fatal("rate must grow with channel gain")
	}
}

func TestUploadDelayAndEnergyEq7Eq8(t *testing.T) {
	c := Channel{BandwidthHz: 1e6, NoisePower: 0.1}
	r := c.UploadRate(0.2, 1.0)
	bits := 8e6
	wantDelay := bits / r
	if got := c.UploadDelay(bits, 0.2, 1.0); math.Abs(got-wantDelay) > 1e-9 {
		t.Fatalf("UploadDelay = %g, want %g", got, wantDelay)
	}
	if got := c.UploadEnergy(bits, 0.2, 1.0); math.Abs(got-0.2*wantDelay) > 1e-9 {
		t.Fatalf("UploadEnergy = %g, want %g", got, 0.2*wantDelay)
	}
}

func TestChannelValidate(t *testing.T) {
	if err := DefaultChannel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Channel{BandwidthHz: 0, NoisePower: 1}).Validate(); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	if err := (Channel{BandwidthHz: 1, NoisePower: 0}).Validate(); err == nil {
		t.Fatal("zero noise must fail")
	}
}

func TestScheduleTDMANoOverlap(t *testing.T) {
	reqs := []UploadRequest{
		{User: 0, ComputeDone: 0, Duration: 3},
		{User: 1, ComputeDone: 1, Duration: 2},
		{User: 2, ComputeDone: 10, Duration: 1},
	}
	slots, makespan := ScheduleTDMA(reqs)
	if len(slots) != 3 {
		t.Fatalf("slots = %d", len(slots))
	}
	// User 0 transmits [0,3); user 1 finished computing at 1 but must wait
	// until 3 (Fig. 1's stop-and-wait); user 2 starts immediately at 10.
	if slots[0].User != 0 || slots[0].Start != 0 || slots[0].End != 3 {
		t.Fatalf("slot0 = %+v", slots[0])
	}
	if slots[1].User != 1 || slots[1].Start != 3 || slots[1].Wait != 2 {
		t.Fatalf("slot1 = %+v", slots[1])
	}
	if slots[2].User != 2 || slots[2].Start != 10 || slots[2].Wait != 0 {
		t.Fatalf("slot2 = %+v", slots[2])
	}
	if makespan != 11 {
		t.Fatalf("makespan = %g, want 11", makespan)
	}
	if TotalWait(slots) != 2 {
		t.Fatalf("TotalWait = %g, want 2", TotalWait(slots))
	}
}

func TestScheduleTDMAEmptyAndSingle(t *testing.T) {
	slots, mk := ScheduleTDMA(nil)
	if slots != nil || mk != 0 {
		t.Fatal("empty schedule must be nil/0")
	}
	slots, mk = ScheduleTDMA([]UploadRequest{{User: 5, ComputeDone: 2, Duration: 4}})
	if len(slots) != 1 || slots[0].Wait != 0 || mk != 6 {
		t.Fatalf("single = %+v mk=%g", slots, mk)
	}
}

func TestScheduleTDMATieBreakByUser(t *testing.T) {
	reqs := []UploadRequest{
		{User: 7, ComputeDone: 1, Duration: 1},
		{User: 2, ComputeDone: 1, Duration: 1},
	}
	slots, _ := ScheduleTDMA(reqs)
	if slots[0].User != 2 {
		t.Fatalf("tie must break by user ID: first = %d", slots[0].User)
	}
}

func TestScheduleTDMABadDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero duration")
		}
	}()
	ScheduleTDMA([]UploadRequest{{User: 0, ComputeDone: 0, Duration: 0}})
}

// Property: schedules never overlap, never start before compute completion,
// respect FCFS order, and the makespan is the max end time.
func TestScheduleTDMAInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]UploadRequest, n)
		for i := range reqs {
			reqs[i] = UploadRequest{
				User:        i,
				ComputeDone: 10 * rng.Float64(),
				Duration:    0.1 + 3*rng.Float64(),
			}
		}
		slots, makespan := ScheduleTDMA(reqs)
		if len(slots) != n {
			return false
		}
		byDone := append([]UploadRequest(nil), reqs...)
		sort.SliceStable(byDone, func(a, b int) bool {
			if byDone[a].ComputeDone != byDone[b].ComputeDone {
				return byDone[a].ComputeDone < byDone[b].ComputeDone
			}
			return byDone[a].User < byDone[b].User
		})
		maxEnd := 0.0
		for i, s := range slots {
			if s.User != byDone[i].User { // FCFS order
				return false
			}
			if s.Start < byDone[i].ComputeDone-1e-12 { // causality
				return false
			}
			if i > 0 && s.Start < slots[i-1].End-1e-12 { // no overlap
				return false
			}
			if s.Wait < -1e-12 {
				return false
			}
			if s.End > maxEnd {
				maxEnd = s.End
			}
		}
		return math.Abs(maxEnd-makespan) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. (10)'s max(T_cal + T_com) is a lower bound on the true TDMA
// makespan (the paper's closed form ignores queueing).
func TestEq10LowerBoundsMakespanQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]UploadRequest, n)
		eq10 := 0.0
		for i := range reqs {
			reqs[i] = UploadRequest{User: i, ComputeDone: 5 * rng.Float64(), Duration: 0.1 + 2*rng.Float64()}
			if v := reqs[i].ComputeDone + reqs[i].Duration; v > eq10 {
				eq10 = v
			}
		}
		_, makespan := ScheduleTDMA(reqs)
		return makespan >= eq10-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
