package wireless

import (
	"container/heap"
	"fmt"
	"sort"
)

// The paper's uplink says users "upload ... in turn by using available Z
// RBs" (Algorithm 1, line 8) and models a single shared rate (Eq. 6). The
// base system therefore serializes uploads (ScheduleTDMA, matching Fig. 1).
// ScheduleParallel implements the alternative reading — the Z resource
// blocks split into k equal sub-channels used concurrently — so the two
// interpretations can be compared. With k sub-channels each upload runs at
// 1/k of the Eq. (6) rate (duration × k) but k uploads proceed at once.

// ScheduleParallel assigns uploads to k identical sub-channels
// first-come-first-served (ties by user ID): each arriving upload takes the
// earliest-free sub-channel. durations must already reflect the per-channel
// rate (i.e. be scaled by k relative to the full-channel duration).
//
// The returned slots are in transmission-start order; the second result is
// the makespan.
func ScheduleParallel(reqs []UploadRequest, k int) ([]UploadSlot, float64) {
	if k <= 0 {
		panic(fmt.Sprintf("wireless: non-positive channel count %d", k))
	}
	if len(reqs) == 0 {
		return nil, 0
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.ComputeDone != rb.ComputeDone {
			return ra.ComputeDone < rb.ComputeDone
		}
		return ra.User < rb.User
	})
	free := make(minHeap, k) // all sub-channels free at t=0
	heap.Init(&free)
	slots := make([]UploadSlot, 0, len(reqs))
	makespan := 0.0
	for _, i := range order {
		r := reqs[i]
		if r.Duration <= 0 {
			panic(fmt.Sprintf("wireless: non-positive upload duration %g for user %d", r.Duration, r.User))
		}
		chFree := heap.Pop(&free).(float64)
		start := r.ComputeDone
		if chFree > start {
			start = chFree
		}
		end := start + r.Duration
		heap.Push(&free, end)
		slots = append(slots, UploadSlot{User: r.User, Start: start, End: end, Wait: start - r.ComputeDone})
		if end > makespan {
			makespan = end
		}
	}
	sort.SliceStable(slots, func(a, b int) bool {
		if slots[a].Start != slots[b].Start {
			return slots[a].Start < slots[b].Start
		}
		return slots[a].User < slots[b].User
	})
	return slots, makespan
}

// minHeap is a float64 min-heap of sub-channel free times.
type minHeap []float64

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
