package nn

import (
	"math/rand"
	"testing"
)

// FuzzLoadParamBytes ensures the binary payload parser never panics and
// never corrupts a model on rejected input.
func FuzzLoadParamBytes(f *testing.F) {
	spec := ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	valid := ParamBytes(spec.Build(rand.New(rand.NewSource(1))))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(truncated)
	corrupted := append([]byte(nil), valid...)
	corrupted[0] ^= 0xFF
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, payload []byte) {
		m := spec.Build(rand.New(rand.NewSource(2)))
		before := m.GetFlatParams()
		if err := LoadParamBytes(m, payload); err != nil {
			// Rejected payloads must leave the model untouched.
			after := m.GetFlatParams()
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("rejected payload mutated param %d", i)
				}
			}
		}
	})
}
