package nn

import "helcfl/internal/tensor"

// Layer scratch management. Each layer owns the tensors it returns from
// Forward/Backward and reuses them across steps whenever the batch shape
// repeats — which is every step of a training run — so a steady-state
// training step performs zero heap allocations. The shape checks are
// hand-rolled (not variadic) because a variadic call would itself allocate
// the shape slice on every hot-path invocation.
//
// The contract this imposes on callers: a tensor returned by Forward or
// Backward is valid until the next Forward/Backward call on the same layer.
// The training loop consumes each output immediately, so nothing observes
// the reuse.

// ensure2 returns t if it already has shape (d0, d1), else a fresh tensor.
func ensure2(t *tensor.Tensor, d0, d1 int) *tensor.Tensor {
	if t != nil && t.Rank() == 2 && t.Dim(0) == d0 && t.Dim(1) == d1 {
		return t
	}
	return tensor.New(d0, d1)
}

// ensure4 returns t if it already has shape (d0, d1, d2, d3), else a fresh
// tensor.
func ensure4(t *tensor.Tensor, d0, d1, d2, d3 int) *tensor.Tensor {
	if t != nil && t.Rank() == 4 && t.Dim(0) == d0 && t.Dim(1) == d1 && t.Dim(2) == d2 && t.Dim(3) == d3 {
		return t
	}
	return tensor.New(d0, d1, d2, d3)
}

// ensureLike returns t if it has ref's shape, else a fresh tensor shaped
// like ref.
func ensureLike(t, ref *tensor.Tensor) *tensor.Tensor {
	if t != nil && t.SameShape(ref) {
		return t
	}
	return tensor.New(ref.Shape()...)
}

// ensureShape returns t if it has exactly the given shape, else a fresh
// tensor.
func ensureShape(t *tensor.Tensor, shape []int) *tensor.Tensor {
	if t != nil && t.Rank() == len(shape) {
		match := true
		for i, d := range shape {
			if t.Dim(i) != d {
				match = false
				break
			}
		}
		if match {
			return t
		}
	}
	return tensor.New(shape...)
}
