package nn

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := r.Forward(x, true)
	want := tensor.FromSlice([]float64{0, 0, 2}, 1, 3)
	if !y.Equal(want) {
		t.Fatalf("ReLU = %v, want %v", y, want)
	}
	if x.At(0, 0) != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid()
	x := tensor.New(1, 100).FillNormal(rand.New(rand.NewSource(1)), 0, 5)
	y := s.Forward(x, true)
	for _, v := range y.Data() {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %g outside (0,1)", v)
		}
	}
	if got := s.Forward(tensor.FromSlice([]float64{0}, 1, 1), true).At(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %g, want 0.5", got)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(0.5, rng)
	x := tensor.Ones(1, 1000)
	eval := d.Forward(x, false)
	if !eval.Equal(x) {
		t.Fatal("dropout must be identity at inference")
	}
	train := d.Forward(x, true)
	zeros := 0
	for _, v := range train.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // survivors rescaled by 1/(1-0.5)
		default:
			t.Fatalf("dropout output %g, want 0 or 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000, want ≈500", zeros)
	}
}

func TestDropoutBadProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(x, true)
	want := tensor.FromSlice([]float64{4, 8, 12, 16}, 1, 1, 2, 2)
	if !y.Equal(want) {
		t.Fatalf("MaxPool = %v, want %v", y, want)
	}
}

func TestGlobalAvgPoolForward(t *testing.T) {
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 1, 2, 2, 2)
	y := g.Forward(x, true)
	if y.Dim(0) != 1 || y.Dim(1) != 2 {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 10 {
		t.Fatalf("GlobalAvgPool = %v", y)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 2, 2).FillNormal(rand.New(rand.NewSource(3)), 0, 1)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	back := f.Backward(y)
	if !back.Equal(x) {
		t.Fatal("Flatten backward must invert the reshape")
	}
}

func TestConcatSplitChannelsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.New(2, 3, 2, 2).FillNormal(rng, 0, 1)
	b := tensor.New(2, 5, 2, 2).FillNormal(rng, 0, 1)
	cat := tensor.New(2, 8, 2, 2)
	concatChannelsInto(cat, a, b)
	if cat.Dim(1) != 8 {
		t.Fatalf("concat channels = %d, want 8", cat.Dim(1))
	}
	a2, b2 := tensor.New(2, 3, 2, 2), tensor.New(2, 5, 2, 2)
	splitChannelsInto(a2, b2, cat)
	if !a2.Equal(a) || !b2.Equal(b) {
		t.Fatal("split must invert concat")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	// Uniform logits over K classes → loss = ln(K).
	logits := tensor.New(2, 4)
	got := loss.Forward(logits, []int{0, 3})
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform CE = %g, want ln4 = %g", got, math.Log(4))
	}
	// Probabilities must sum to 1 per row.
	probs := loss.Probs()
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += probs.At(i, j)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("probs row %d sums to %g", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZeroPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	loss := NewSoftmaxCrossEntropy()
	logits := tensor.New(3, 5).FillNormal(rng, 0, 2)
	loss.Forward(logits, []int{1, 0, 4})
	d := loss.Backward()
	for i := 0; i < 3; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += d.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("gradient row %d sums to %g, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyNumericalStability(t *testing.T) {
	loss := NewSoftmaxCrossEntropy()
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	got := loss.Forward(logits, []int{0})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("CE with huge logits = %g", got)
	}
	if got > 1e-6 {
		t.Fatalf("CE with dominant correct logit = %g, want ≈0", got)
	}
}

func TestMSE(t *testing.T) {
	loss := NewMSE()
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 4}, 2)
	if got := loss.Forward(pred, target); got != 2.5 {
		t.Fatalf("MSE = %g, want 2.5", got)
	}
	d := loss.Backward()
	want := tensor.FromSlice([]float64{1, -2}, 2)
	if !d.Equal(want) {
		t.Fatalf("MSE grad = %v, want %v", d, want)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 3, 2,
		5, 0, 0,
	}, 2, 3)
	if got := Accuracy(logits, []int{1, 0}); got != 1 {
		t.Fatalf("Accuracy = %g, want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0}); got != 0.5 {
		t.Fatalf("Accuracy = %g, want 0.5", got)
	}
}

func TestSGDPlainStep(t *testing.T) {
	p := tensor.FromSlice([]float64{1, 2}, 2)
	g := tensor.FromSlice([]float64{10, -10}, 2)
	NewSGD(0.1).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want := tensor.FromSlice([]float64{0, 3}, 2)
	if !p.Equal(want) {
		t.Fatalf("SGD step = %v, want %v", p, want)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := tensor.FromSlice([]float64{0}, 1)
	g := tensor.FromSlice([]float64{1}, 1)
	opt := NewSGDMomentum(1, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}) // v=-1, p=-1
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}) // v=-1.5, p=-2.5
	if got := p.At(0); got != -2.5 {
		t.Fatalf("momentum position = %g, want -2.5", got)
	}
	opt.Reset()
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}) // fresh v=-1
	if got := p.At(0); got != -3.5 {
		t.Fatalf("after reset position = %g, want -3.5", got)
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	p := tensor.FromSlice([]float64{10}, 1)
	g := tensor.New(1)
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if got := p.At(0); math.Abs(got-9.5) > 1e-12 {
		t.Fatalf("decayed param = %g, want 9.5", got)
	}
}

func TestSequentialCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(4, []int{5}, 3, rng)
	c := m.Clone()
	c.Params()[0].Fill(0)
	if m.Params()[0].Sum() == 0 {
		t.Fatal("clone params must be independent")
	}
	if m.NumParams() != c.NumParams() {
		t.Fatal("clone must preserve parameter count")
	}
}

func TestFlatParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(4, []int{5}, 3, rng)
	flat := m.GetFlatParams()
	c := m.Clone()
	for i := range flat {
		flat[i] += 1
	}
	c.SetFlatParams(flat)
	diff := c.Params()[0].At(0, 0) - m.Params()[0].At(0, 0)
	if math.Abs(diff-1) > 1e-12 {
		t.Fatalf("flat round-trip offset = %g, want 1", diff)
	}
}

func TestSetFlatParamsWrongLengthPanics(t *testing.T) {
	m := NewLogistic(3, 2, rand.New(rand.NewSource(8)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-length vector")
		}
	}()
	m.SetFlatParams(make([]float64, 3))
}

func TestParamBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(6, []int{4}, 3, rng)
	payload := ParamBytes(m)
	wantLen := 8 + 4*m.NumParams()
	if len(payload) != wantLen {
		t.Fatalf("payload length %d, want %d", len(payload), wantLen)
	}
	c := m.Clone()
	for _, p := range c.Params() {
		p.Fill(0)
	}
	if err := LoadParamBytes(c, payload); err != nil {
		t.Fatal(err)
	}
	// float32 quantization bounds the round-trip error.
	a, b := m.GetFlatParams(), c.GetFlatParams()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("param %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestLoadParamBytesRejectsCorrupt(t *testing.T) {
	m := NewLogistic(2, 2, rand.New(rand.NewSource(10)))
	if err := LoadParamBytes(m, []byte{1, 2, 3}); err == nil {
		t.Fatal("short payload must error")
	}
	payload := ParamBytes(m)
	payload[0] ^= 0xFF
	if err := LoadParamBytes(m, payload); err == nil {
		t.Fatal("bad magic must error")
	}
	other := NewLogistic(3, 2, rand.New(rand.NewSource(11)))
	if err := LoadParamBytes(other, ParamBytes(m)); err == nil {
		t.Fatal("mismatched model must error")
	}
}

func TestModelBitsMatchesParamCount(t *testing.T) {
	m := NewLogistic(10, 4, rand.New(rand.NewSource(12)))
	want := float64(8+4*m.NumParams()) * 8
	if got := ModelBits(m); got != want {
		t.Fatalf("ModelBits = %g, want %g", got, want)
	}
}

func TestModelSpecBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, spec := range []ModelSpec{
		{Kind: "logistic", InC: 3, H: 8, W: 8, Classes: 10},
		{Kind: "mlp", InC: 3, H: 8, W: 8, Classes: 10, Hidden: []int{32}},
		{Kind: "squeezenet-mini", InC: 3, H: 8, W: 8, Classes: 10},
	} {
		m := spec.Build(rng)
		if m.NumParams() == 0 {
			t.Fatalf("%s: no parameters", spec.Kind)
		}
		var x *tensor.Tensor
		if spec.FlattensInput() {
			x = tensor.New(2, spec.InputDim()).FillNormal(rng, 0, 1)
		} else {
			x = tensor.New(2, spec.InC, spec.H, spec.W).FillNormal(rng, 0, 1)
		}
		y := Predict(m, x)
		if y.Dim(0) != 2 || y.Dim(1) != spec.Classes {
			t.Fatalf("%s: output shape %v", spec.Kind, y.Shape())
		}
	}
}

func TestModelSpecUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown kind")
		}
	}()
	ModelSpec{Kind: "transformer"}.Build(rand.New(rand.NewSource(1)))
}

// Training sanity: GD on a linearly separable 2-class problem must drive the
// loss down and reach perfect training accuracy.
func TestTrainingConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 40
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float64(cls*4 - 2)
		x.Set(cx+rng.NormFloat64()*0.5, i, 0)
		x.Set(rng.NormFloat64()*0.5, i, 1)
		labels[i] = cls
	}
	m := NewLogistic(2, 2, rng)
	loss := NewSoftmaxCrossEntropy()
	opt := NewSGD(0.5)
	first := loss.Forward(m.Forward(x, true), labels)
	for it := 0; it < 200; it++ {
		m.ZeroGrads()
		loss.Forward(m.Forward(x, true), labels)
		m.Backward(loss.Backward())
		opt.Step(m.Params(), m.Grads())
	}
	last := loss.Forward(m.Forward(x, false), labels)
	if last >= first {
		t.Fatalf("loss did not decrease: %g → %g", first, last)
	}
	if acc := Accuracy(Predict(m, x), labels); acc != 1 {
		t.Fatalf("training accuracy = %g, want 1", acc)
	}
}

func TestSequentialSummaryAndNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := NewMLP(4, []int{3}, 2, rng)
	if m.NumParams() != 4*3+3+3*2+2 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	if m.Summary() == "" {
		t.Fatal("Summary must describe layers")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	for _, l := range []Layer{
		NewDense(2, 2, rand.New(rand.NewSource(1))),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewGlobalAvgPool(),
		NewFlatten(),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic for backward before forward", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 2))
		}()
	}
}
