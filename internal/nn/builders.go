package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// ModelSpec names a network architecture so that every FL participant can
// construct structurally identical models and exchange flat parameter
// vectors.
type ModelSpec struct {
	// Kind selects the builder: "mlp", "logistic", or "squeezenet-mini".
	Kind string
	// InC, H, W describe the input image (convolutional kinds) or combine
	// into the flat input dimension InC*H*W (dense kinds).
	InC, H, W int
	// Classes is the output dimensionality.
	Classes int
	// Hidden lists hidden-layer widths for the MLP kind.
	Hidden []int
}

// InputDim returns the flattened input dimensionality.
func (s ModelSpec) InputDim() int { return s.InC * s.H * s.W }

// Build constructs the model with fresh parameters drawn from rng.
func (s ModelSpec) Build(rng *rand.Rand) *Sequential {
	switch s.Kind {
	case "mlp":
		return NewMLP(s.InputDim(), s.Hidden, s.Classes, rng)
	case "logistic":
		return NewLogistic(s.InputDim(), s.Classes, rng)
	case "squeezenet-mini":
		return NewSqueezeNetMini(s.InC, s.Classes, rng)
	default:
		panic(fmt.Sprintf("nn: unknown model kind %q", s.Kind))
	}
}

// FlattensInput reports whether the model consumes flat (B, D) inputs
// rather than (B, C, H, W) images.
func (s ModelSpec) FlattensInput() bool {
	return s.Kind == "mlp" || s.Kind == "logistic"
}

// NewMLP returns a multilayer perceptron with ReLU activations between
// hidden layers and linear logits at the output.
func NewMLP(in int, hidden []int, classes int, rng *rand.Rand) *Sequential {
	m := NewSequential()
	prev := in
	for _, h := range hidden {
		m.Add(NewDense(prev, h, rng)).Add(NewReLU())
		prev = h
	}
	m.Add(NewDense(prev, classes, rng))
	return m
}

// NewLogistic returns multinomial logistic regression (a single linear
// layer; softmax lives in the loss).
func NewLogistic(in, classes int, rng *rand.Rand) *Sequential {
	return NewSequential(NewDense(in, classes, rng))
}

// NewSqueezeNetMini returns a SqueezeNet-style CNN scaled for small (8×8)
// synthetic images: a stem convolution, two Fire modules separated by max
// pooling, a 1×1 classifier convolution, and global average pooling —
// the same squeeze/expand architecture family as the paper's SqueezeNet,
// sized to train in simulation.
func NewSqueezeNetMini(inC, classes int, rng *rand.Rand) *Sequential {
	return NewSequential(
		NewConv2D(inC, 16, 3, 3, 1, 1, rng), // stem: 8x8 → 8x8
		NewReLU(),
		NewMaxPool2D(2, 2), // 8x8 → 4x4
		NewFire(16, 8, 16, 16, rng),
		NewFire(32, 8, 16, 16, rng),
		NewConv2D(32, classes, 1, 1, 1, 0, rng), // classifier conv
		NewGlobalAvgPool(),
	)
}

// Predict runs the model in inference mode and returns logits.
func Predict(m *Sequential, x *tensor.Tensor) *tensor.Tensor {
	return m.Forward(x, false)
}
