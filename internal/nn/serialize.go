package nn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShapeMismatch reports a structurally valid parameter payload whose
// declared parameter count does not fit the receiving model — a protocol
// violation distinct from a malformed payload, so servers can answer it
// with 422 rather than 400.
var ErrShapeMismatch = errors.New("nn: payload shape mismatch")

// Parameter serialization defines the FL upload payload. The wire format is
// what a real deployment would send: a magic header, the parameter count,
// and every parameter as an IEEE-754 float32 (matching fp32 training and the
// paper's C_model "data size of the uploaded model parameters in bits").

const paramMagic = uint32(0x48454C43) // "HELC"

// ParamBytes serializes the model's parameters to the upload wire format.
// Its length defines C_model for Eq. (7).
func ParamBytes(m *Sequential) []byte {
	flat := m.GetFlatParams()
	var buf bytes.Buffer
	buf.Grow(8 + 4*len(flat))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], paramMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(flat)))
	buf.Write(hdr[:])
	var w [4]byte
	for _, v := range flat {
		binary.LittleEndian.PutUint32(w[:], math.Float32bits(float32(v)))
		buf.Write(w[:])
	}
	return buf.Bytes()
}

// LoadParamBytes overwrites the model's parameters from a ParamBytes
// payload. The parameter count must match the model exactly.
func LoadParamBytes(m *Sequential, payload []byte) error {
	if len(payload) < 8 {
		return fmt.Errorf("nn: payload too short (%d bytes)", len(payload))
	}
	if binary.LittleEndian.Uint32(payload[0:4]) != paramMagic {
		return fmt.Errorf("nn: bad payload magic")
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	if n != m.NumParams() {
		return fmt.Errorf("%w: payload has %d params, model has %d", ErrShapeMismatch, n, m.NumParams())
	}
	if len(payload) != 8+4*n {
		return fmt.Errorf("nn: payload length %d, want %d", len(payload), 8+4*n)
	}
	flat := make([]float64, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint32(payload[8+4*i : 12+4*i])
		flat[i] = float64(math.Float32frombits(bits))
	}
	m.SetFlatParams(flat)
	return nil
}

// ModelBits returns the upload payload size in bits, the C_model of Eq. (7).
func ModelBits(m *Sequential) float64 {
	return float64(len(ParamBytes(m))) * 8
}
