package nn_test

import (
	"fmt"
	"math/rand"

	"helcfl/internal/nn"
	"helcfl/internal/tensor"
)

// A complete training step: forward, loss, backward, SGD — the primitive
// every FL client executes (Eq. 3 of the paper).
func ExampleSequential() {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewMLP(4, []int{8}, 2, rng)
	loss := nn.NewSoftmaxCrossEntropy()
	opt := nn.NewSGD(0.1)

	x := tensor.New(16, 4).FillNormal(rng, 0, 1)
	labels := make([]int, 16)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	first := loss.Forward(model.Forward(x, true), labels)
	for step := 0; step < 100; step++ {
		model.ZeroGrads()
		loss.Forward(model.Forward(x, true), labels)
		model.Backward(loss.Backward())
		opt.Step(model.Params(), model.Grads())
	}
	last := loss.Forward(model.Forward(x, false), labels)
	fmt.Println(last < first)
	// Output:
	// true
}

// ModelSpec lets every FL participant rebuild an identical architecture
// and exchange parameters as flat vectors or wire payloads.
func ExampleModelSpec() {
	spec := nn.ModelSpec{Kind: "squeezenet-mini", InC: 3, H: 8, W: 8, Classes: 10}
	m := spec.Build(rand.New(rand.NewSource(1)))
	fmt.Printf("%d parameters, %d-bit upload\n", m.NumParams(), int(nn.ModelBits(m)))
	// Output:
	// 3802 parameters, 121728-bit upload
}
