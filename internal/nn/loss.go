package nn

import (
	"fmt"
	"math"

	"helcfl/internal/tensor"
)

// SoftmaxCrossEntropy is the fused softmax + cross-entropy loss used for
// classification. Fusing keeps the backward pass numerically trivial:
// d(logits) = (softmax(logits) - onehot(labels)) / B.
type SoftmaxCrossEntropy struct {
	probs   *tensor.Tensor
	labels  []int
	dlogits *tensor.Tensor // scratch reused across steps (see scratch.go)
}

// NewSoftmaxCrossEntropy returns the loss.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes mean cross-entropy over the batch. logits has shape
// (B, K); labels holds B class indices in [0, K).
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits shape %v, want rank 2", logits.Shape()))
	}
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), b))
	}
	s.probs = ensure2(s.probs, b, k)
	s.labels = labels
	ld, pd := logits.Data(), s.probs.Data()
	loss := 0.0
	for i := 0; i < b; i++ {
		row := ld[i*k : (i+1)*k]
		prow := pd[i*k : (i+1)*k]
		// Numerically stable softmax via max subtraction.
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			prow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range prow {
			prow[j] *= inv
		}
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d outside [0,%d)", y, k))
		}
		p := prow[y]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	return loss / float64(b)
}

// Backward returns d(loss)/d(logits) for the last Forward call.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	if s.probs == nil {
		panic("nn: SoftmaxCrossEntropy backward before forward")
	}
	b, k := s.probs.Dim(0), s.probs.Dim(1)
	s.dlogits = ensure2(s.dlogits, b, k)
	dd := s.dlogits.Data()
	copy(dd, s.probs.Data())
	inv := 1 / float64(b)
	for i, y := range s.labels {
		dd[i*k+y] -= 1
	}
	for i := range dd {
		dd[i] *= inv
	}
	return s.dlogits
}

// Probs returns the softmax probabilities from the last Forward call.
func (s *SoftmaxCrossEntropy) Probs() *tensor.Tensor { return s.probs }

// MSE is the mean-squared-error loss over all elements.
type MSE struct {
	diff *tensor.Tensor
}

// NewMSE returns the loss.
func NewMSE() *MSE { return &MSE{} }

// Forward computes mean((pred - target)²).
func (m *MSE) Forward(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	m.diff = pred.Sub(target)
	s := 0.0
	for _, v := range m.diff.Data() {
		s += v * v
	}
	return s / float64(pred.Size())
}

// Backward returns d(loss)/d(pred) for the last Forward call.
func (m *MSE) Backward() *tensor.Tensor {
	if m.diff == nil {
		panic("nn: MSE backward before forward")
	}
	return m.diff.Scale(2 / float64(m.diff.Size()))
}

// Accuracy returns the fraction of rows of logits (B, K) whose argmax equals
// the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: Accuracy logits shape %v, want rank 2", logits.Shape()))
	}
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), b))
	}
	if b == 0 {
		return 0
	}
	ld := logits.Data()
	correct := 0
	for i := 0; i < b; i++ {
		row := ld[i*k : (i+1)*k]
		arg, best := 0, row[0]
		for j, v := range row[1:] {
			if v > best {
				arg, best = j+1, v
			}
		}
		if arg == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(b)
}
