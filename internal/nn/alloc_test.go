package nn

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

// trainStep runs one full-batch GD step: zero grads, forward, loss,
// backward, SGD-style parameter update — the exact shape of the client-side
// hot loop in internal/fl.
func trainStep(m *Sequential, loss *SoftmaxCrossEntropy, x *tensor.Tensor, labels []int, lr float64) float64 {
	m.ZeroGrads()
	logits := m.Forward(x, true)
	l := loss.Forward(logits, labels)
	m.Backward(loss.Backward())
	params, grads := m.Params(), m.Grads()
	for i, p := range params {
		p.AXPY(-lr, grads[i])
	}
	return l
}

// TestTrainStepZeroAllocs pins zero steady-state heap allocations for a
// full training step on every model kind the experiments build. Layer
// scratch is allocated on the first (warm-up) step and reused afterwards.
func TestTrainStepZeroAllocs(t *testing.T) {
	specs := []ModelSpec{
		{Kind: "logistic", InC: 3, H: 8, W: 8, Classes: 10},
		{Kind: "mlp", InC: 3, H: 8, W: 8, Classes: 10, Hidden: []int{32, 16}},
		{Kind: "squeezenet-mini", InC: 3, H: 8, W: 8, Classes: 10},
	}
	for _, spec := range specs {
		t.Run(spec.Kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			m := spec.Build(rng)
			loss := NewSoftmaxCrossEntropy()
			batch := 16
			var x *tensor.Tensor
			if spec.FlattensInput() {
				x = tensor.New(batch, spec.InputDim())
			} else {
				x = tensor.New(batch, spec.InC, spec.H, spec.W)
			}
			x.FillNormal(rng, 0, 1)
			labels := make([]int, batch)
			for i := range labels {
				labels[i] = rng.Intn(spec.Classes)
			}
			trainStep(m, loss, x, labels, 0.05) // warm-up: allocates scratch
			n := testing.AllocsPerRun(20, func() {
				trainStep(m, loss, x, labels, 0.05)
			})
			if n != 0 {
				t.Errorf("%s steady-state training step allocates %v times, want 0", spec.Kind, n)
			}
		})
	}
}

// TestConv2DParallelMatchesSerial drives a Conv2D batch large enough to
// cross the kernel parallel threshold and pins bit-identity of forward
// outputs and all gradients between 1-worker and multi-worker runs.
// Meaningful under -race: batch shards must stay disjoint.
func TestConv2DParallelMatchesSerial(t *testing.T) {
	build := func() (*Conv2D, *tensor.Tensor, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(12))
		// 16·(8·3·3)·256 positions ≈ 8.5M im2col cells and a
		// (16, 72)×(72, 16·256) matmul ≥ parallelMinFlops.
		c := NewConv2D(8, 16, 3, 3, 1, 1, rng)
		x := tensor.New(16, 8, 16, 16).FillNormal(rng, 0, 1)
		dy := tensor.New(16, 16, 16, 16).FillNormal(rng, 0, 1)
		return c, x, dy
	}

	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	cs, xs, dys := build()
	wantY := cs.Forward(xs, true).Clone()
	wantDX := cs.Backward(dys).Clone()
	wantDW := cs.Grads()[0].Clone()
	wantDB := cs.Grads()[1].Clone()

	for _, w := range []int{2, 4} {
		tensor.SetWorkers(w)
		cp, xp, dyp := build()
		y := cp.Forward(xp, true)
		if !bitEqualTensors(y, wantY) {
			t.Fatalf("parallel Conv2D forward (workers=%d) diverges from serial", w)
		}
		dx := cp.Backward(dyp)
		if !bitEqualTensors(dx, wantDX) {
			t.Fatalf("parallel Conv2D input gradient (workers=%d) diverges", w)
		}
		if !bitEqualTensors(cp.Grads()[0], wantDW) || !bitEqualTensors(cp.Grads()[1], wantDB) {
			t.Fatalf("parallel Conv2D parameter gradients (workers=%d) diverge", w)
		}
	}
}

// bitEqualTensors compares raw float64 bits, not values, so negative zeros
// and NaNs count too.
func bitEqualTensors(a, b *tensor.Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}
