package nn

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sm := NewSoftmax()
	x := tensor.New(4, 6).FillNormal(rng, 0, 3)
	y := sm.Forward(x, true)
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 6; j++ {
			v := y.At(i, j)
			if v <= 0 || v >= 1 {
				t.Fatalf("probability %g outside (0,1)", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	sm := NewSoftmax()
	x := tensor.FromSlice([]float64{1e5, -1e5}, 1, 2)
	y := sm.Forward(x, true)
	if math.IsNaN(y.At(0, 0)) || math.Abs(y.At(0, 0)-1) > 1e-12 {
		t.Fatalf("huge logits broke softmax: %v", y)
	}
}

// MSE on softmax probabilities gradient-checks against finite differences,
// validating the Jacobian-vector product.
func TestSoftmaxGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d1 := NewDense(4, 5, rng)
	sm := NewSoftmax()
	x := tensor.New(3, 4).FillNormal(rng, 0, 1)
	target := tensor.New(3, 5).FillUniform(rng, 0, 1)
	mse := NewMSE()

	lossOf := func() float64 {
		return mse.Forward(sm.Forward(d1.Forward(x, true), true), target)
	}
	base := lossOf()
	_ = base
	mse.Forward(sm.Forward(d1.Forward(x, true), true), target)
	dsm := sm.Backward(mse.Backward())
	d1.Backward(dsm)

	const h = 1e-6
	w := d1.Params()[0]
	g := d1.Grads()[0]
	for _, idx := range []int{0, 3, 7, 12} {
		orig := w.Data()[idx]
		w.Data()[idx] = orig + h
		lp := lossOf()
		w.Data()[idx] = orig - h
		lm := lossOf()
		w.Data()[idx] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(g.Data()[idx]-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("weight %d: analytic %g vs numeric %g", idx, g.Data()[idx], numeric)
		}
	}
}

func TestSoftmaxBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSoftmax().Backward(tensor.New(1, 2))
}
