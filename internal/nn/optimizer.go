package nn

import (
	"fmt"

	"helcfl/internal/tensor"
)

// SGD is stochastic gradient descent with optional classical momentum and L2
// weight decay. With Momentum == 0 and WeightDecay == 0 it performs exactly
// the plain GD update of the paper's Eq. (3):
//
//	θ ← θ - LR · ∇L(θ)
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD returns a plain gradient-descent optimizer with the given learning
// rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewSGDMomentum returns SGD with classical momentum.
func NewSGDMomentum(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step applies one update to params given aligned grads. The first call
// fixes the parameter layout; later calls must pass the same shapes.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: SGD step with %d params but %d grads", len(params), len(grads)))
	}
	if s.Momentum != 0 && s.velocity == nil {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		if !p.SameShape(g) {
			panic(fmt.Sprintf("nn: SGD param %d shape %v but grad shape %v", i, p.Shape(), g.Shape()))
		}
		if s.WeightDecay != 0 {
			// L2 decay folds into the gradient: g ← g + λθ.
			g = g.Add(p.Scale(s.WeightDecay))
		}
		if s.Momentum != 0 {
			v := s.velocity[i]
			v.ScaleInPlace(s.Momentum).AXPY(-s.LR, g)
			p.AddInPlace(v)
		} else {
			p.AXPY(-s.LR, g)
		}
	}
}

// Reset clears momentum state, e.g. when the model parameters are replaced
// wholesale (a new FL round).
func (s *SGD) Reset() { s.velocity = nil }
