package nn

import (
	"fmt"
	"math"

	"helcfl/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba) with bias-corrected first and
// second moment estimates. The FL experiments use plain GD per the paper's
// Eq. (3); Adam exists for library completeness and the standalone-training
// examples.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m, v []*tensor.Tensor
}

// NewAdam returns Adam with the canonical defaults β1=0.9, β2=0.999,
// ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to params given aligned grads.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: Adam step with %d params but %d grads", len(params), len(grads)))
	}
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Shape()...)
			a.v[i] = tensor.New(p.Shape()...)
		}
	}
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i].Data()
		md := a.m[i].Data()
		vd := a.v[i].Data()
		pd := p.Data()
		for j := range pd {
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*g[j]
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*g[j]*g[j]
			mhat := md[j] / c1
			vhat := vd[j] / c2
			pd[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
		}
	}
}

// Reset clears moment state.
func (a *Adam) Reset() {
	a.m, a.v = nil, nil
	a.step = 0
}

// LRSchedule maps a 0-based step index to a learning rate.
type LRSchedule interface {
	// LR returns the learning rate for the given step.
	LR(step int) float64
}

// ConstLR is a constant learning rate.
type ConstLR float64

// LR implements LRSchedule.
func (c ConstLR) LR(step int) float64 { return float64(c) }

// StepDecay multiplies Base by Factor every Every steps.
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

// LR implements LRSchedule.
func (s StepDecay) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.Every))
}

// CosineDecay anneals from Base to Floor over Horizon steps and stays at
// Floor afterwards.
type CosineDecay struct {
	Base    float64
	Floor   float64
	Horizon int
}

// LR implements LRSchedule.
func (c CosineDecay) LR(step int) float64 {
	if c.Horizon <= 0 || step >= c.Horizon {
		return c.Floor
	}
	t := float64(step) / float64(c.Horizon)
	return c.Floor + (c.Base-c.Floor)*(1+math.Cos(math.Pi*t))/2
}
