package nn

import (
	"strings"

	"helcfl/internal/tensor"
)

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	layers []Layer

	// params/grads cache the flattened tensor lists so hot-path callers
	// (ZeroGrads, the client update loop) don't rebuild slices every step.
	// Add invalidates them.
	params, grads []*tensor.Tensor
}

// NewSequential returns a model over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Add appends a layer and returns the model for chaining.
func (m *Sequential) Add(l Layer) *Sequential {
	m.layers = append(m.layers, l)
	m.params, m.grads = nil, nil
	return m
}

// Layers returns the layer list (do not modify).
func (m *Sequential) Layers() []Layer { return m.layers }

// Forward runs the whole network on a batch.
func (m *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates a loss gradient through all layers in reverse,
// accumulating parameter gradients, and returns the input gradient.
func (m *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dout = m.layers[i].Backward(dout)
	}
	return dout
}

// Params returns all trainable parameters, layer order, params within layer
// in declaration order. The list is cached after the first call (do not
// modify it); Add invalidates the cache.
func (m *Sequential) Params() []*tensor.Tensor {
	if m.params == nil {
		for _, l := range m.layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// Grads returns all parameter gradients aligned with Params. Cached like
// Params.
func (m *Sequential) Grads() []*tensor.Tensor {
	if m.grads == nil {
		for _, l := range m.layers {
			m.grads = append(m.grads, l.Grads()...)
		}
	}
	return m.grads
}

// ZeroGrads clears all accumulated gradients.
func (m *Sequential) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// Clone returns a deep copy with independent parameters.
func (m *Sequential) Clone() *Sequential {
	ls := make([]Layer, len(m.layers))
	for i, l := range m.layers {
		ls[i] = l.Clone()
	}
	return &Sequential{layers: ls}
}

// NumParams returns the total number of scalar parameters.
func (m *Sequential) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// Summary renders a one-line-per-layer description.
func (m *Sequential) Summary() string {
	var b strings.Builder
	for _, l := range m.layers {
		b.WriteString(l.Name())
		b.WriteString("\n")
	}
	return b.String()
}

// GetFlatParams copies all parameters into one flat vector, in Params order.
func (m *Sequential) GetFlatParams() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, p := range m.Params() {
		out = append(out, p.Data()...)
	}
	return out
}

// FlatParamsInto copies all parameters into dst (length NumParams), in
// Params order — the allocation-free form of GetFlatParams.
func (m *Sequential) FlatParamsInto(dst []float64) {
	off := 0
	for _, p := range m.Params() {
		n := p.Size()
		if off+n > len(dst) {
			panic("nn: FlatParamsInto destination too short for model")
		}
		copy(dst[off:off+n], p.Data())
		off += n
	}
	if off != len(dst) {
		panic("nn: FlatParamsInto destination longer than model parameters")
	}
}

// SetFlatParams overwrites all parameters from a flat vector produced by
// GetFlatParams on a model with identical architecture.
func (m *Sequential) SetFlatParams(flat []float64) {
	off := 0
	for _, p := range m.Params() {
		n := p.Size()
		if off+n > len(flat) {
			panic("nn: SetFlatParams vector too short for model")
		}
		copy(p.Data(), flat[off:off+n])
		off += n
	}
	if off != len(flat) {
		panic("nn: SetFlatParams vector longer than model parameters")
	}
}
