package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// Conv2D is a 2-D convolution over (B, C, H, W) batches. The whole batch is
// lowered to one im2col matrix of shape (InC·KH·KW, B·OH·OW) so the forward
// pass is a single matmul against the (OutC, InC·KH·KW) weights, and the
// backward pass is two matmuls plus a per-sample col2im scatter.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor

	// Cached state from the last forward pass.
	cols       *tensor.Tensor // (InC·KH·KW, B·positions)
	batch      int
	inH, inW   int
	outH, outW int

	// Scratch reused across steps (see scratch.go).
	mega, out            *tensor.Tensor
	dyMega, dcols, dwTmp *tensor.Tensor
	dx                   *tensor.Tensor
}

// NewConv2D returns a Conv2D layer with He-normal weights and zero bias.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *rand.Rand) *Conv2D {
	if stride <= 0 {
		panic("nn: Conv2D stride must be positive")
	}
	fanIn := inC * kh * kw
	return &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		w:  tensor.New(outC, fanIn).FillHe(rng, fanIn),
		b:  tensor.New(outC),
		dw: tensor.New(outC, fanIn),
		db: tensor.New(outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, %dx%d, s%d, p%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D forward shape %v, want (B, %d, H, W)", x.Shape(), c.InC))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.batch, c.inH, c.inW = b, h, w
	c.outH = tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	positions := c.outH * c.outW
	ckk := c.InC * c.KH * c.KW

	// Lower the whole batch into one column matrix, sample-major columns;
	// the batch dimension shards across goroutines for large inputs.
	c.cols = ensure2(c.cols, ckk, b*positions)
	tensor.Im2ColBatchInto(c.cols, x, c.KH, c.KW, c.Stride, c.Pad)

	// One matmul for the whole batch: (OutC, ckk) × (ckk, B·positions).
	c.mega = ensure2(c.mega, c.OutC, b*positions)
	tensor.MatMulInto(c.mega, c.w, c.cols)

	// Reorder (OutC, B·positions) → (B, OutC, outH, outW) and add bias.
	c.out = ensure4(c.out, b, c.OutC, c.outH, c.outW)
	md, od, bd := c.mega.Data(), c.out.Data(), c.b.Data()
	for oc := 0; oc < c.OutC; oc++ {
		bias := bd[oc]
		row := md[oc*b*positions : (oc+1)*b*positions]
		for i := 0; i < b; i++ {
			dst := od[(i*c.OutC+oc)*positions : (i*c.OutC+oc+1)*positions]
			src := row[i*positions : (i+1)*positions]
			for p := range dst {
				dst[p] = src[p] + bias
			}
		}
	}
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D backward before forward")
	}
	b := c.batch
	positions := c.outH * c.outW
	ckk := c.InC * c.KH * c.KW

	// Reorder dout (B, OutC, positions) → (OutC, B·positions).
	c.dyMega = ensure2(c.dyMega, c.OutC, b*positions)
	dd, myd := dout.Data(), c.dyMega.Data()
	dbd := c.db.Data()
	for oc := 0; oc < c.OutC; oc++ {
		row := myd[oc*b*positions : (oc+1)*b*positions]
		sum := 0.0
		for i := 0; i < b; i++ {
			src := dd[(i*c.OutC+oc)*positions : (i*c.OutC+oc+1)*positions]
			copy(row[i*positions:(i+1)*positions], src)
			for _, v := range src {
				sum += v
			}
		}
		dbd[oc] += sum
	}

	// dW += dy·colsᵀ and dcols = Wᵀ·dy, each one matmul for the batch.
	c.dwTmp = ensure2(c.dwTmp, c.OutC, ckk)
	tensor.MatMulTransBInto(c.dwTmp, c.dyMega, c.cols)
	c.dw.AddInPlace(c.dwTmp)
	c.dcols = ensure2(c.dcols, ckk, b*positions)
	tensor.MatMulTransAInto(c.dcols, c.w, c.dyMega)

	// Scatter dcols back per sample; samples shard across goroutines for
	// large batches.
	c.dx = ensure4(c.dx, b, c.InC, c.inH, c.inW)
	tensor.Col2ImBatchInto(c.dx, c.dcols, b, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad)
	return c.dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dw, c.db} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
		w: c.w.Clone(), b: c.b.Clone(), dw: c.dw.Clone(), db: c.db.Clone(),
	}
}
