package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// Conv2D is a 2-D convolution over (B, C, H, W) batches. The whole batch is
// lowered to one im2col matrix of shape (InC·KH·KW, B·OH·OW) so the forward
// pass is a single matmul against the (OutC, InC·KH·KW) weights, and the
// backward pass is two matmuls plus a per-sample col2im scatter.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor

	// Cached state from the last forward pass.
	cols       *tensor.Tensor // (InC·KH·KW, B·positions)
	batch      int
	inH, inW   int
	outH, outW int
}

// NewConv2D returns a Conv2D layer with He-normal weights and zero bias.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *rand.Rand) *Conv2D {
	if stride <= 0 {
		panic("nn: Conv2D stride must be positive")
	}
	fanIn := inC * kh * kw
	return &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		w:  tensor.New(outC, fanIn).FillHe(rng, fanIn),
		b:  tensor.New(outC),
		dw: tensor.New(outC, fanIn),
		db: tensor.New(outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, %dx%d, s%d, p%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D forward shape %v, want (B, %d, H, W)", x.Shape(), c.InC))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.batch, c.inH, c.inW = b, h, w
	c.outH = tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	positions := c.outH * c.outW
	ckk := c.InC * c.KH * c.KW
	plane := c.InC * h * w

	// Lower the whole batch into one column matrix, sample-major columns.
	cols := tensor.New(ckk, b*positions)
	for i := 0; i < b; i++ {
		xi := tensor.FromSlice(x.Data()[i*plane:(i+1)*plane], c.InC, h, w)
		ci := tensor.Im2Col(xi, c.KH, c.KW, c.Stride, c.Pad)
		// Copy ci's rows into the batch matrix at column offset i·positions.
		src := ci.Data()
		dst := cols.Data()
		for r := 0; r < ckk; r++ {
			copy(dst[r*b*positions+i*positions:r*b*positions+(i+1)*positions],
				src[r*positions:(r+1)*positions])
		}
	}
	c.cols = cols

	// One matmul for the whole batch: (OutC, ckk) × (ckk, B·positions).
	mega := tensor.MatMul(c.w, cols)

	// Reorder (OutC, B·positions) → (B, OutC, outH, outW) and add bias.
	out := tensor.New(b, c.OutC, c.outH, c.outW)
	md, od, bd := mega.Data(), out.Data(), c.b.Data()
	for oc := 0; oc < c.OutC; oc++ {
		bias := bd[oc]
		row := md[oc*b*positions : (oc+1)*b*positions]
		for i := 0; i < b; i++ {
			dst := od[(i*c.OutC+oc)*positions : (i*c.OutC+oc+1)*positions]
			src := row[i*positions : (i+1)*positions]
			for p := range dst {
				dst[p] = src[p] + bias
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D backward before forward")
	}
	b := c.batch
	positions := c.outH * c.outW
	ckk := c.InC * c.KH * c.KW

	// Reorder dout (B, OutC, positions) → (OutC, B·positions).
	dyMega := tensor.New(c.OutC, b*positions)
	dd, myd := dout.Data(), dyMega.Data()
	dbd := c.db.Data()
	for oc := 0; oc < c.OutC; oc++ {
		row := myd[oc*b*positions : (oc+1)*b*positions]
		sum := 0.0
		for i := 0; i < b; i++ {
			src := dd[(i*c.OutC+oc)*positions : (i*c.OutC+oc+1)*positions]
			copy(row[i*positions:(i+1)*positions], src)
			for _, v := range src {
				sum += v
			}
		}
		dbd[oc] += sum
	}

	// dW += dy·colsᵀ and dcols = Wᵀ·dy, each one matmul for the batch.
	c.dw.AddInPlace(tensor.MatMulTransB(dyMega, c.cols))
	dcols := tensor.MatMulTransA(c.w, dyMega)

	// Scatter dcols back per sample.
	dx := tensor.New(b, c.InC, c.inH, c.inW)
	plane := c.InC * c.inH * c.inW
	dcd := dcols.Data()
	scratch := tensor.New(ckk, positions)
	for i := 0; i < b; i++ {
		sd := scratch.Data()
		for r := 0; r < ckk; r++ {
			copy(sd[r*positions:(r+1)*positions], dcd[r*b*positions+i*positions:r*b*positions+(i+1)*positions])
		}
		dxi := tensor.Col2Im(scratch, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad)
		copy(dx.Data()[i*plane:(i+1)*plane], dxi.Data())
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dw, c.db} }

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
		w: c.w.Clone(), b: c.b.Clone(), dw: c.dw.Clone(), db: c.db.Clone(),
	}
}
