package nn

import (
	"fmt"
	"math"

	"helcfl/internal/tensor"
)

// LayerNorm normalizes each row of a (B, D) batch to zero mean and unit
// variance across features, then applies a learned affine transform
// y = γ·x̂ + β. Unlike BatchNorm it has no train/eval distinction.
type LayerNorm struct {
	D   int
	Eps float64

	gamma, beta   *tensor.Tensor
	dgamma, dbeta *tensor.Tensor

	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm returns a LayerNorm over D features with γ=1, β=0.
func NewLayerNorm(d int) *LayerNorm {
	return &LayerNorm{
		D: d, Eps: 1e-5,
		gamma:  tensor.Ones(d),
		beta:   tensor.New(d),
		dgamma: tensor.New(d),
		dbeta:  tensor.New(d),
	}
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return fmt.Sprintf("LayerNorm(%d)", l.D) }

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.D {
		panic(fmt.Sprintf("nn: LayerNorm forward shape %v, want (B, %d)", x.Shape(), l.D))
	}
	b := x.Dim(0)
	out := tensor.New(b, l.D)
	l.xhat = tensor.New(b, l.D)
	l.invStd = make([]float64, b)
	xd, od, hd := x.Data(), out.Data(), l.xhat.Data()
	gd, bd := l.gamma.Data(), l.beta.Data()
	for i := 0; i < b; i++ {
		row := xd[i*l.D : (i+1)*l.D]
		mu := 0.0
		for _, v := range row {
			mu += v
		}
		mu /= float64(l.D)
		va := 0.0
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= float64(l.D)
		inv := 1 / math.Sqrt(va+l.Eps)
		l.invStd[i] = inv
		for j, v := range row {
			h := (v - mu) * inv
			hd[i*l.D+j] = h
			od[i*l.D+j] = gd[j]*h + bd[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LayerNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.xhat == nil {
		panic("nn: LayerNorm backward before forward")
	}
	b := dout.Dim(0)
	dx := tensor.New(b, l.D)
	dd, hd, dxd := dout.Data(), l.xhat.Data(), dx.Data()
	gd := l.gamma.Data()
	dgd, dbd := l.dgamma.Data(), l.dbeta.Data()
	n := float64(l.D)
	for i := 0; i < b; i++ {
		// Per-row reductions.
		var sumDh, sumDhH float64
		for j := 0; j < l.D; j++ {
			dy := dd[i*l.D+j]
			h := hd[i*l.D+j]
			dgd[j] += dy * h
			dbd[j] += dy
			dh := dy * gd[j]
			sumDh += dh
			sumDhH += dh * h
		}
		inv := l.invStd[i]
		for j := 0; j < l.D; j++ {
			dh := dd[i*l.D+j] * gd[j]
			h := hd[i*l.D+j]
			dxd[i*l.D+j] = inv * (dh - sumDh/n - h*sumDhH/n)
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.gamma, l.beta} }

// Grads implements Layer.
func (l *LayerNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dgamma, l.dbeta} }

// Clone implements Layer.
func (l *LayerNorm) Clone() Layer {
	return &LayerNorm{
		D: l.D, Eps: l.Eps,
		gamma: l.gamma.Clone(), beta: l.beta.Clone(),
		dgamma: l.dgamma.Clone(), dbeta: l.dbeta.Clone(),
	}
}

// BatchNorm1D normalizes each feature of a (B, D) batch across the batch
// dimension at train time, maintaining running statistics for inference.
type BatchNorm1D struct {
	D        int
	Eps      float64
	Momentum float64

	gamma, beta          *tensor.Tensor
	dgamma, dbeta        *tensor.Tensor
	runMean, runVar      *tensor.Tensor
	xhat                 *tensor.Tensor
	invStd               []float64
	batch                int
	forwardWasTrainement bool
}

// NewBatchNorm1D returns a BatchNorm over D features with γ=1, β=0,
// running stats initialized to the standard normal.
func NewBatchNorm1D(d int) *BatchNorm1D {
	rv := tensor.Ones(d)
	return &BatchNorm1D{
		D: d, Eps: 1e-5, Momentum: 0.9,
		gamma:   tensor.Ones(d),
		beta:    tensor.New(d),
		dgamma:  tensor.New(d),
		dbeta:   tensor.New(d),
		runMean: tensor.New(d),
		runVar:  rv,
	}
}

// Name implements Layer.
func (bn *BatchNorm1D) Name() string { return fmt.Sprintf("BatchNorm1D(%d)", bn.D) }

// Forward implements Layer.
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != bn.D {
		panic(fmt.Sprintf("nn: BatchNorm1D forward shape %v, want (B, %d)", x.Shape(), bn.D))
	}
	b := x.Dim(0)
	bn.batch = b
	bn.forwardWasTrainement = train
	out := tensor.New(b, bn.D)
	xd, od := x.Data(), out.Data()
	gd, bd := bn.gamma.Data(), bn.beta.Data()

	if !train {
		rm, rv := bn.runMean.Data(), bn.runVar.Data()
		for i := 0; i < b; i++ {
			for j := 0; j < bn.D; j++ {
				h := (xd[i*bn.D+j] - rm[j]) / math.Sqrt(rv[j]+bn.Eps)
				od[i*bn.D+j] = gd[j]*h + bd[j]
			}
		}
		return out
	}

	if b < 2 {
		panic("nn: BatchNorm1D training needs batch size ≥ 2")
	}
	bn.xhat = tensor.New(b, bn.D)
	bn.invStd = make([]float64, bn.D)
	hd := bn.xhat.Data()
	rm, rv := bn.runMean.Data(), bn.runVar.Data()
	nb := float64(b)
	for j := 0; j < bn.D; j++ {
		mu := 0.0
		for i := 0; i < b; i++ {
			mu += xd[i*bn.D+j]
		}
		mu /= nb
		va := 0.0
		for i := 0; i < b; i++ {
			d := xd[i*bn.D+j] - mu
			va += d * d
		}
		va /= nb
		inv := 1 / math.Sqrt(va+bn.Eps)
		bn.invStd[j] = inv
		for i := 0; i < b; i++ {
			h := (xd[i*bn.D+j] - mu) * inv
			hd[i*bn.D+j] = h
			od[i*bn.D+j] = gd[j]*h + bd[j]
		}
		rm[j] = bn.Momentum*rm[j] + (1-bn.Momentum)*mu
		rv[j] = bn.Momentum*rv[j] + (1-bn.Momentum)*va
	}
	return out
}

// Backward implements Layer. It supports only the training path (inference
// needs no gradients).
func (bn *BatchNorm1D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil || !bn.forwardWasTrainement {
		panic("nn: BatchNorm1D backward before training forward")
	}
	b := bn.batch
	dx := tensor.New(b, bn.D)
	dd, hd, dxd := dout.Data(), bn.xhat.Data(), dx.Data()
	gd := bn.gamma.Data()
	dgd, dbd := bn.dgamma.Data(), bn.dbeta.Data()
	nb := float64(b)
	for j := 0; j < bn.D; j++ {
		var sumDh, sumDhH float64
		for i := 0; i < b; i++ {
			dy := dd[i*bn.D+j]
			h := hd[i*bn.D+j]
			dgd[j] += dy * h
			dbd[j] += dy
			dh := dy * gd[j]
			sumDh += dh
			sumDhH += dh * h
		}
		inv := bn.invStd[j]
		for i := 0; i < b; i++ {
			dh := dd[i*bn.D+j] * gd[j]
			h := hd[i*bn.D+j]
			dxd[i*bn.D+j] = inv * (dh - sumDh/nb - h*sumDhH/nb)
		}
	}
	return dx
}

// Params implements Layer. Running statistics are state, not parameters,
// and are excluded (they would otherwise be FedAvg-averaged, which is a
// deliberate design decision left to the caller).
func (bn *BatchNorm1D) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.gamma, bn.beta} }

// Grads implements Layer.
func (bn *BatchNorm1D) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.dgamma, bn.dbeta} }

// Clone implements Layer.
func (bn *BatchNorm1D) Clone() Layer {
	return &BatchNorm1D{
		D: bn.D, Eps: bn.Eps, Momentum: bn.Momentum,
		gamma: bn.gamma.Clone(), beta: bn.beta.Clone(),
		dgamma: bn.dgamma.Clone(), dbeta: bn.dbeta.Clone(),
		runMean: bn.runMean.Clone(), runVar: bn.runVar.Clone(),
	}
}
