package nn

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

// lossOf runs a forward pass + softmax-CE loss, used by the numeric
// gradient checks below.
func lossOf(m *Sequential, x *tensor.Tensor, labels []int) float64 {
	loss := NewSoftmaxCrossEntropy()
	return loss.Forward(m.Forward(x, true), labels)
}

// checkParamGradients verifies every parameter gradient of m against a
// central finite difference. relTol bounds |analytic-numeric| relative to
// scale max(1e-4, |numeric|).
func checkParamGradients(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int, relTol float64) {
	t.Helper()
	m.ZeroGrads()
	loss := NewSoftmaxCrossEntropy()
	loss.Forward(m.Forward(x, true), labels)
	m.Backward(loss.Backward())

	const h = 1e-5
	params, grads := m.Params(), m.Grads()
	for pi, p := range params {
		pd := p.Data()
		gd := grads[pi].Data()
		// Check a deterministic subset to keep runtime sane on big layers.
		stride := 1
		if len(pd) > 64 {
			stride = len(pd) / 64
		}
		for ei := 0; ei < len(pd); ei += stride {
			orig := pd[ei]
			pd[ei] = orig + h
			lp := lossOf(m, x, labels)
			pd[ei] = orig - h
			lm := lossOf(m, x, labels)
			pd[ei] = orig
			numeric := (lp - lm) / (2 * h)
			analytic := gd[ei]
			scale := math.Max(1e-4, math.Abs(numeric))
			if math.Abs(analytic-numeric) > relTol*scale {
				t.Fatalf("param %d elem %d: analytic %.8g vs numeric %.8g", pi, ei, analytic, numeric)
			}
		}
	}
}

// checkInputGradient verifies the gradient flowing out of Backward (w.r.t.
// the input) against finite differences.
func checkInputGradient(t *testing.T, m *Sequential, x *tensor.Tensor, labels []int, relTol float64) {
	t.Helper()
	m.ZeroGrads()
	loss := NewSoftmaxCrossEntropy()
	loss.Forward(m.Forward(x, true), labels)
	dx := m.Backward(loss.Backward())

	const h = 1e-5
	xd := x.Data()
	dd := dx.Data()
	stride := 1
	if len(xd) > 48 {
		stride = len(xd) / 48
	}
	for ei := 0; ei < len(xd); ei += stride {
		orig := xd[ei]
		xd[ei] = orig + h
		lp := lossOf(m, x, labels)
		xd[ei] = orig - h
		lm := lossOf(m, x, labels)
		xd[ei] = orig
		numeric := (lp - lm) / (2 * h)
		scale := math.Max(1e-4, math.Abs(numeric))
		if math.Abs(dd[ei]-numeric) > relTol*scale {
			t.Fatalf("input elem %d: analytic %.8g vs numeric %.8g", ei, dd[ei], numeric)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewSequential(NewDense(6, 4, rng))
	x := tensor.New(3, 6).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 2, 3}, 1e-4)
	checkInputGradient(t, m, x, []int{0, 2, 3}, 1e-4)
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(5, []int{7, 6}, 3, rng)
	x := tensor.New(4, 5).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 1, 2, 0}, 2e-4)
	checkInputGradient(t, m, x, []int{0, 1, 2, 0}, 2e-4)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSequential(
		NewConv2D(2, 3, 3, 3, 1, 1, rng),
		NewFlatten(),
		NewDense(3*4*4, 3, rng),
	)
	x := tensor.New(2, 2, 4, 4).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 2}, 2e-4)
	checkInputGradient(t, m, x, []int{0, 2}, 2e-4)
}

func TestConv2DStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewSequential(
		NewConv2D(1, 2, 2, 2, 2, 0, rng),
		NewFlatten(),
		NewDense(2*2*2, 2, rng),
	)
	x := tensor.New(1, 1, 4, 4).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{1}, 2e-4)
	checkInputGradient(t, m, x, []int{1}, 2e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewSequential(
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(1*2*2, 2, rng),
	)
	// Well-separated values avoid argmax ties that break finite differences.
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float64(i*i%17) + 0.01*float64(i)
	}
	checkParamGradients(t, m, x, []int{1}, 2e-4)
	checkInputGradient(t, m, x, []int{1}, 2e-4)
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewSequential(
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(2*2*2, 3, rng),
	)
	x := tensor.New(1, 2, 4, 4).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{2}, 2e-4)
	checkInputGradient(t, m, x, []int{2}, 2e-4)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSequential(
		NewConv2D(1, 3, 1, 1, 1, 0, rng),
		NewGlobalAvgPool(),
	)
	x := tensor.New(2, 1, 3, 3).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 2}, 2e-4)
	checkInputGradient(t, m, x, []int{0, 2}, 2e-4)
}

func TestFireGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewSequential(
		NewFire(2, 2, 3, 3, rng),
		NewFlatten(),
		NewDense(6*3*3, 2, rng),
	)
	x := tensor.New(1, 2, 3, 3).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{1}, 5e-4)
	checkInputGradient(t, m, x, []int{1}, 5e-4)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct {
		name string
		act  Layer
	}{
		{"LeakyReLU", NewLeakyReLU(0.1)},
		{"Sigmoid", NewSigmoid()},
		{"Tanh", NewTanh()},
	} {
		m := NewSequential(NewDense(4, 5, rng), tc.act, NewDense(5, 3, rng))
		x := tensor.New(3, 4).FillNormal(rng, 0, 1)
		t.Run(tc.name, func(t *testing.T) {
			checkParamGradients(t, m, x, []int{0, 1, 2}, 2e-4)
			checkInputGradient(t, m, x, []int{0, 1, 2}, 2e-4)
		})
	}
}

func TestSqueezeNetMiniGradients(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient check over the full CNN is slow")
	}
	rng := rand.New(rand.NewSource(10))
	m := NewSqueezeNetMini(3, 4, rng)
	x := tensor.New(1, 3, 8, 8).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{2}, 1e-3)
}
