package nn

import (
	"math"
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(θ) = Σ (θ_i - i)²; gradient 2(θ - target).
	p := tensor.New(5)
	target := []float64{0, 1, 2, 3, 4}
	opt := NewAdam(0.1)
	for it := 0; it < 500; it++ {
		g := tensor.New(5)
		for i := range target {
			g.Data()[i] = 2 * (p.Data()[i] - target[i])
		}
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	for i, want := range target {
		if math.Abs(p.Data()[i]-want) > 0.05 {
			t.Fatalf("θ[%d] = %g, want %g", i, p.Data()[i], want)
		}
	}
}

func TestAdamResetClearsState(t *testing.T) {
	p := tensor.New(1)
	g := tensor.Ones(1)
	opt := NewAdam(0.1)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	first := p.Data()[0]
	opt.Reset()
	p2 := tensor.New(1)
	opt.Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g})
	if p2.Data()[0] != first {
		t.Fatal("after Reset the first step must repeat exactly")
	}
}

func TestAdamMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1).Step([]*tensor.Tensor{tensor.New(1)}, nil)
}

func TestAdamTrainsMLPFasterThanSGDOnHardLR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	x := tensor.New(n, 4).FillNormal(rng, 0, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0)+x.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	train := func(opt interface {
		Step(p, g []*tensor.Tensor)
	}) float64 {
		m := NewMLP(4, []int{16}, 2, rand.New(rand.NewSource(2)))
		loss := NewSoftmaxCrossEntropy()
		var final float64
		for it := 0; it < 100; it++ {
			m.ZeroGrads()
			final = loss.Forward(m.Forward(x, true), labels)
			m.Backward(loss.Backward())
			opt.Step(m.Params(), m.Grads())
		}
		return final
	}
	adamLoss := train(NewAdam(0.01))
	if adamLoss > 0.3 {
		t.Fatalf("Adam final loss %g too high", adamLoss)
	}
}

func TestLRSchedules(t *testing.T) {
	if ConstLR(0.1).LR(99) != 0.1 {
		t.Fatal("const schedule must be constant")
	}
	sd := StepDecay{Base: 1, Factor: 0.5, Every: 10}
	if sd.LR(0) != 1 || sd.LR(9) != 1 || sd.LR(10) != 0.5 || sd.LR(25) != 0.25 {
		t.Fatalf("step decay = %g %g %g %g", sd.LR(0), sd.LR(9), sd.LR(10), sd.LR(25))
	}
	cd := CosineDecay{Base: 1, Floor: 0.1, Horizon: 100}
	if cd.LR(0) != 1 {
		t.Fatalf("cosine start = %g", cd.LR(0))
	}
	if got := cd.LR(100); got != 0.1 {
		t.Fatalf("cosine end = %g", got)
	}
	if cd.LR(50) >= cd.LR(10) || cd.LR(90) >= cd.LR(50) {
		t.Fatal("cosine must decrease monotonically")
	}
	// Degenerate horizons.
	if (StepDecay{Base: 2}).LR(50) != 2 {
		t.Fatal("Every=0 step decay must be constant")
	}
	if (CosineDecay{Base: 1, Floor: 0.2}).LR(3) != 0.2 {
		t.Fatal("Horizon=0 cosine must sit at floor")
	}
}

func TestLayerNormForwardNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLayerNorm(8)
	x := tensor.New(4, 8).FillNormal(rng, 3, 2)
	y := ln.Forward(x, true)
	// With γ=1, β=0 every row has ≈0 mean and ≈1 variance.
	for i := 0; i < 4; i++ {
		mu, va := 0.0, 0.0
		for j := 0; j < 8; j++ {
			mu += y.At(i, j)
		}
		mu /= 8
		for j := 0; j < 8; j++ {
			d := y.At(i, j) - mu
			va += d * d
		}
		va /= 8
		if math.Abs(mu) > 1e-9 || math.Abs(va-1) > 1e-3 {
			t.Fatalf("row %d: mean %g var %g", i, mu, va)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewSequential(NewDense(5, 6, rng), NewLayerNorm(6), NewDense(6, 3, rng))
	x := tensor.New(4, 5).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 1, 2, 0}, 5e-4)
	checkInputGradient(t, m, x, []int{0, 1, 2, 0}, 5e-4)
}

func TestBatchNormForwardTrainNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm1D(3)
	x := tensor.New(32, 3).FillNormal(rng, -2, 5)
	y := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		mu, va := 0.0, 0.0
		for i := 0; i < 32; i++ {
			mu += y.At(i, j)
		}
		mu /= 32
		for i := 0; i < 32; i++ {
			d := y.At(i, j) - mu
			va += d * d
		}
		va /= 32
		if math.Abs(mu) > 1e-9 || math.Abs(va-1) > 1e-3 {
			t.Fatalf("feature %d: mean %g var %g", j, mu, va)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm1D(2)
	// Feed many batches from N(4, 9); running stats should approach them.
	for it := 0; it < 300; it++ {
		x := tensor.New(64, 2).FillNormal(rng, 4, 3)
		bn.Forward(x, true)
	}
	rm := bn.runMean.Data()
	rv := bn.runVar.Data()
	for j := 0; j < 2; j++ {
		if math.Abs(rm[j]-4) > 0.5 {
			t.Fatalf("running mean[%d] = %g, want ≈4", j, rm[j])
		}
		if math.Abs(rv[j]-9) > 2 {
			t.Fatalf("running var[%d] = %g, want ≈9", j, rv[j])
		}
	}
	// Inference uses running stats: a batch from the same distribution maps
	// to ≈standard normal.
	x := tensor.New(256, 2).FillNormal(rng, 4, 3)
	y := bn.Forward(x, false)
	if math.Abs(y.Mean()) > 0.2 {
		t.Fatalf("inference output mean %g, want ≈0", y.Mean())
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSequential(NewDense(4, 5, rng), NewBatchNorm1D(5), NewReLU(), NewDense(5, 2, rng))
	x := tensor.New(6, 4).FillNormal(rng, 0, 1)
	checkParamGradients(t, m, x, []int{0, 1, 0, 1, 0, 1}, 1e-3)
	checkInputGradient(t, m, x, []int{0, 1, 0, 1, 0, 1}, 1e-3)
}

func TestBatchNormTinyBatchPanics(t *testing.T) {
	bn := NewBatchNorm1D(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch of 1 in training")
		}
	}()
	bn.Forward(tensor.New(1, 2), true)
}

func TestBatchNormCloneIndependent(t *testing.T) {
	bn := NewBatchNorm1D(2)
	c := bn.Clone().(*BatchNorm1D)
	c.gamma.Fill(0)
	if bn.gamma.Data()[0] == 0 {
		t.Fatal("clone must not share parameters")
	}
}
