package nn

import (
	"math/rand"
	"testing"

	"helcfl/internal/tensor"
)

// layerCase drives the generic layer-contract harness.
type layerCase struct {
	name  string
	make  func(rng *rand.Rand) Layer
	input func(rng *rand.Rand) *tensor.Tensor
}

func layerCases() []layerCase {
	return []layerCase{
		{
			name:  "Dense",
			make:  func(rng *rand.Rand) Layer { return NewDense(6, 4, rng) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(3, 6).FillNormal(rng, 0, 1) },
		},
		{
			name:  "Conv2D",
			make:  func(rng *rand.Rand) Layer { return NewConv2D(2, 3, 3, 3, 1, 1, rng) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 2, 5, 5).FillNormal(rng, 0, 1) },
		},
		{
			name:  "ReLU",
			make:  func(rng *rand.Rand) Layer { return NewReLU() },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 7).FillNormal(rng, 0, 1) },
		},
		{
			name:  "LeakyReLU",
			make:  func(rng *rand.Rand) Layer { return NewLeakyReLU(0.1) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 7).FillNormal(rng, 0, 1) },
		},
		{
			name:  "Sigmoid",
			make:  func(rng *rand.Rand) Layer { return NewSigmoid() },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 5).FillNormal(rng, 0, 1) },
		},
		{
			name:  "Tanh",
			make:  func(rng *rand.Rand) Layer { return NewTanh() },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 5).FillNormal(rng, 0, 1) },
		},
		{
			name:  "MaxPool2D",
			make:  func(rng *rand.Rand) Layer { return NewMaxPool2D(2, 2) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(1, 2, 4, 4).FillNormal(rng, 0, 1) },
		},
		{
			name:  "AvgPool2D",
			make:  func(rng *rand.Rand) Layer { return NewAvgPool2D(2, 2) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(1, 2, 4, 4).FillNormal(rng, 0, 1) },
		},
		{
			name:  "GlobalAvgPool",
			make:  func(rng *rand.Rand) Layer { return NewGlobalAvgPool() },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 3, 3, 3).FillNormal(rng, 0, 1) },
		},
		{
			name:  "Flatten",
			make:  func(rng *rand.Rand) Layer { return NewFlatten() },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(2, 2, 3, 3).FillNormal(rng, 0, 1) },
		},
		{
			name:  "Fire",
			make:  func(rng *rand.Rand) Layer { return NewFire(2, 2, 3, 3, rng) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(1, 2, 4, 4).FillNormal(rng, 0, 1) },
		},
		{
			name:  "LayerNorm",
			make:  func(rng *rand.Rand) Layer { return NewLayerNorm(6) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(3, 6).FillNormal(rng, 0, 1) },
		},
		{
			name:  "BatchNorm1D",
			make:  func(rng *rand.Rand) Layer { return NewBatchNorm1D(6) },
			input: func(rng *rand.Rand) *tensor.Tensor { return tensor.New(4, 6).FillNormal(rng, 0, 1) },
		},
	}
}

// Every layer obeys the Layer contract: deterministic forward, aligned
// params/grads, clone independence, and a backward gradient shaped like
// the input.
func TestLayerContract(t *testing.T) {
	for _, tc := range layerCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			l := tc.make(rng)
			x := tc.input(rng)

			if l.Name() == "" {
				t.Fatal("empty layer name")
			}
			params, grads := l.Params(), l.Grads()
			if len(params) != len(grads) {
				t.Fatalf("params/grads misaligned: %d vs %d", len(params), len(grads))
			}
			for i := range params {
				if !params[i].SameShape(grads[i]) {
					t.Fatalf("param %d shape %v but grad shape %v", i, params[i].Shape(), grads[i].Shape())
				}
			}

			// Deterministic forward (train=true for everything except
			// dropout-like layers, none of which are in this table).
			y1 := l.Forward(x, true)
			y2 := l.Forward(x, true)
			if !y1.Equal(y2) {
				t.Fatal("forward is not deterministic")
			}

			// Backward returns an input-shaped gradient.
			dout := y1.Clone().ApplyInPlace(func(float64) float64 { return 1 })
			dx := l.Backward(dout)
			if !dx.SameShape(x) {
				t.Fatalf("backward shape %v, want input shape %v", dx.Shape(), x.Shape())
			}

			// Clone is structurally identical but parameter-independent.
			c := l.Clone()
			cp := c.Params()
			if len(cp) != len(params) {
				t.Fatal("clone changed parameter count")
			}
			for i := range params {
				if !cp[i].Equal(params[i]) {
					t.Fatalf("clone param %d differs", i)
				}
			}
			if len(params) > 0 {
				params[0].Fill(123)
				if cp[0].Equal(params[0]) {
					t.Fatal("clone shares parameter storage")
				}
			}
			// The clone works standalone.
			yc := c.Forward(tc.input(rand.New(rand.NewSource(1))), true)
			if yc.Size() == 0 {
				t.Fatal("clone forward produced nothing")
			}
		})
	}
}

// Gradient accumulation: two backward passes double the parameter
// gradients; ZeroGrads resets them.
func TestLayerGradAccumulation(t *testing.T) {
	for _, tc := range layerCases() {
		rng := rand.New(rand.NewSource(2))
		l := tc.make(rng)
		if len(l.Params()) == 0 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			x := tc.input(rng)
			y := l.Forward(x, true)
			dout := y.Clone().ApplyInPlace(func(float64) float64 { return 0.5 })
			l.Backward(dout)
			once := cloneTensors(l.Grads())
			l.Forward(x, true)
			l.Backward(dout)
			for i, g := range l.Grads() {
				if !g.AllClose(once[i].Scale(2), 1e-9) {
					t.Fatalf("grad %d did not accumulate to 2x", i)
				}
			}
			zeroGrads(l)
			for i, g := range l.Grads() {
				if g.Norm2() != 0 {
					t.Fatalf("grad %d not cleared", i)
				}
			}
		})
	}
}
