package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
)

// newZeroRand gives the deterministic source used to scaffold a model whose
// parameters are immediately overwritten from the file.
func newZeroRand() *rand.Rand { return rand.New(rand.NewSource(0)) }

// Model files bundle the architecture spec with the parameter payload so a
// file is self-describing: JSON header (spec) + '\n' + ParamBytes payload.

// fileMagic guards model files.
const fileMagic = uint32(0x48454C46) // "HELF"

// SaveModel writes a self-describing model file.
func SaveModel(path string, spec ModelSpec, m *Sequential) error {
	header, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("nn: marshal spec: %w", err)
	}
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(header)))
	buf.Write(hdr[:])
	buf.Write(header)
	buf.Write(ParamBytes(m))
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadModel reads a model file, rebuilds the architecture, and restores its
// parameters.
func LoadModel(path string) (ModelSpec, *Sequential, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return ModelSpec{}, nil, err
	}
	if len(raw) < 8 {
		return ModelSpec{}, nil, fmt.Errorf("nn: model file too short")
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != fileMagic {
		return ModelSpec{}, nil, fmt.Errorf("nn: bad model file magic")
	}
	hlen := int(binary.LittleEndian.Uint32(raw[4:8]))
	if 8+hlen > len(raw) {
		return ModelSpec{}, nil, fmt.Errorf("nn: truncated model header")
	}
	var spec ModelSpec
	if err := json.Unmarshal(raw[8:8+hlen], &spec); err != nil {
		return ModelSpec{}, nil, fmt.Errorf("nn: decode spec: %w", err)
	}
	m := spec.Build(newZeroRand())
	if err := LoadParamBytes(m, raw[8+hlen:]); err != nil {
		return ModelSpec{}, nil, err
	}
	return spec, m, nil
}
