package nn

import (
	"fmt"

	"helcfl/internal/tensor"
)

// MaxPool2D is a 2-D max pooling layer over (B, C, H, W) batches.
type MaxPool2D struct {
	K, Stride int

	argmax     []int // flat input index chosen for each output element
	inShape    []int
	outH, outW int

	// Scratch reused across steps (see scratch.go).
	out, dx *tensor.Tensor
}

// NewMaxPool2D returns a max-pool layer with a k×k window and the given
// stride.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: MaxPool2D kernel and stride must be positive")
	}
	return &MaxPool2D{K: k, Stride: stride}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%dx%d, s%d)", m.K, m.K, m.Stride) }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D forward shape %v, want rank 4", x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, m.K, m.Stride, 0)
	ow := tensor.ConvOutSize(w, m.K, m.Stride, 0)
	m.inShape = append(m.inShape[:0], b, c, h, w)
	m.outH, m.outW = oh, ow
	m.out = ensure4(m.out, b, c, oh, ow)
	if cap(m.argmax) < m.out.Size() {
		m.argmax = make([]int, m.out.Size())
	}
	m.argmax = m.argmax[:m.out.Size()]
	xd, od := x.Data(), m.out.Data()
	oi := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := -1
					bestV := 0.0
					for ki := 0; ki < m.K; ki++ {
						ii := i*m.Stride + ki
						if ii >= h {
							break
						}
						for kj := 0; kj < m.K; kj++ {
							jj := j*m.Stride + kj
							if jj >= w {
								break
							}
							idx := plane + ii*w + jj
							if best == -1 || xd[idx] > bestV {
								best, bestV = idx, xd[idx]
							}
						}
					}
					od[oi] = bestV
					m.argmax[oi] = best
					oi++
				}
			}
		}
	}
	return m.out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn: MaxPool2D backward before forward")
	}
	m.dx = ensureShape(m.dx, m.inShape)
	m.dx.Zero()
	dd, dxd := dout.Data(), m.dx.Data()
	for oi, idx := range m.argmax {
		dxd[idx] += dd[oi]
	}
	return m.dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (m *MaxPool2D) Clone() Layer { return &MaxPool2D{K: m.K, Stride: m.Stride} }

// AvgPool2D is a 2-D average pooling layer over (B, C, H, W) batches.
type AvgPool2D struct {
	K, Stride int

	inShape    []int
	outH, outW int
}

// NewAvgPool2D returns an average-pool layer with a k×k window and stride.
func NewAvgPool2D(k, stride int) *AvgPool2D {
	if k <= 0 || stride <= 0 {
		panic("nn: AvgPool2D kernel and stride must be positive")
	}
	return &AvgPool2D{K: k, Stride: stride}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return fmt.Sprintf("AvgPool2D(%dx%d, s%d)", a.K, a.K, a.Stride) }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: AvgPool2D forward shape %v, want rank 4", x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, a.K, a.Stride, 0)
	ow := tensor.ConvOutSize(w, a.K, a.Stride, 0)
	a.inShape = []int{b, c, h, w}
	a.outH, a.outW = oh, ow
	out := tensor.New(b, c, oh, ow)
	xd, od := x.Data(), out.Data()
	inv := 1.0 / float64(a.K*a.K)
	oi := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					s := 0.0
					for ki := 0; ki < a.K; ki++ {
						ii := i*a.Stride + ki
						for kj := 0; kj < a.K; kj++ {
							jj := j*a.Stride + kj
							s += xd[plane+ii*w+jj]
						}
					}
					od[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if a.inShape == nil {
		panic("nn: AvgPool2D backward before forward")
	}
	b, c, h, w := a.inShape[0], a.inShape[1], a.inShape[2], a.inShape[3]
	dx := tensor.New(a.inShape...)
	dd, dxd := dout.Data(), dx.Data()
	inv := 1.0 / float64(a.K*a.K)
	oi := 0
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := (bi*c + ci) * h * w
			for i := 0; i < a.outH; i++ {
				for j := 0; j < a.outW; j++ {
					g := dd[oi] * inv
					oi++
					for ki := 0; ki < a.K; ki++ {
						ii := i*a.Stride + ki
						for kj := 0; kj < a.K; kj++ {
							jj := j*a.Stride + kj
							dxd[plane+ii*w+jj] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (a *AvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (a *AvgPool2D) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (a *AvgPool2D) Clone() Layer { return &AvgPool2D{K: a.K, Stride: a.Stride} }

// GlobalAvgPool reduces (B, C, H, W) to (B, C) by spatial averaging, the
// SqueezeNet classifier head.
type GlobalAvgPool struct {
	inShape []int

	// Scratch reused across steps (see scratch.go).
	out, dx *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return "GlobalAvgPool" }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool forward shape %v, want rank 4", x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = append(g.inShape[:0], b, c, h, w)
	g.out = ensure2(g.out, b, c)
	xd, od := x.Data(), g.out.Data()
	inv := 1.0 / float64(h*w)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			plane := xd[(bi*c+ci)*h*w : (bi*c+ci+1)*h*w]
			s := 0.0
			for _, v := range plane {
				s += v
			}
			od[bi*c+ci] = s * inv
		}
	}
	return g.out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if g.inShape == nil {
		panic("nn: GlobalAvgPool backward before forward")
	}
	b, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	g.dx = ensureShape(g.dx, g.inShape)
	inv := 1.0 / float64(h*w)
	dd, dxd := dout.Data(), g.dx.Data()
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			gv := dd[bi*c+ci] * inv
			plane := dxd[(bi*c+ci)*h*w : (bi*c+ci+1)*h*w]
			for i := range plane {
				plane[i] = gv
			}
		}
	}
	return g.dx
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (g *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (g *GlobalAvgPool) Clone() Layer { return &GlobalAvgPool{} }

// Flatten reshapes (B, ...) to (B, features).
type Flatten struct {
	inShape []int

	// Scratch reused across steps (see scratch.go).
	out, dx *tensor.Tensor
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	b := x.Dim(0)
	f.out = ensure2(f.out, b, x.Size()/b)
	copy(f.out.Data(), x.Data())
	return f.out
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten backward before forward")
	}
	f.dx = ensureShape(f.dx, f.inShape)
	copy(f.dx.Data(), dout.Data())
	return f.dx
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }
