package nn

import (
	"fmt"
	"math"
	"math/rand"

	"helcfl/internal/tensor"
)

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask []bool // true where input > 0

	// Scratch reused across steps (see scratch.go).
	out, dx *tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = ensureLike(r.out, x)
	data := r.out.Data()
	copy(data, x.Data())
	if cap(r.mask) < len(data) {
		r.mask = make([]bool, len(data))
	}
	r.mask = r.mask[:len(data)]
	for i, v := range data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			data[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU backward before forward")
	}
	r.dx = ensureLike(r.dx, dout)
	data := r.dx.Data()
	copy(data, dout.Data())
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// LeakyReLU is max(x, slope·x) with a small positive slope for x < 0.
type LeakyReLU struct {
	Slope float64
	x     *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative-side slope.
func NewLeakyReLU(slope float64) *LeakyReLU { return &LeakyReLU{Slope: slope} }

// Name implements Layer.
func (l *LeakyReLU) Name() string { return fmt.Sprintf("LeakyReLU(%g)", l.Slope) }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	return x.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return l.Slope * v
	})
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: LeakyReLU backward before forward")
	}
	out := dout.Clone()
	xd := l.x.Data()
	od := out.Data()
	for i := range od {
		if xd[i] <= 0 {
			od[i] *= l.Slope
		}
	}
	return out
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (l *LeakyReLU) Clone() Layer { return &LeakyReLU{Slope: l.Slope} }

// Sigmoid is the logistic activation 1/(1+e^{-x}).
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.out = x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if s.out == nil {
		panic("nn: Sigmoid backward before forward")
	}
	out := dout.Clone()
	od := out.Data()
	yd := s.out.Data()
	for i := range od {
		od[i] *= yd[i] * (1 - yd[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.out = x.Apply(math.Tanh)
	return t.out
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if t.out == nil {
		panic("nn: Tanh backward before forward")
	}
	out := dout.Clone()
	od := out.Data()
	yd := t.out.Data()
	for i := range od {
		od[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Dropout zeroes each element with probability P at train time and rescales
// survivors by 1/(1-P) (inverted dropout). It is the identity at inference.
// The paper's experiments do not use dropout; the layer exists for library
// completeness and is deterministic given its RNG.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a Dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g outside [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%g)", d.P) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = nil
		return x.Clone()
	}
	out := x.Clone()
	data := out.Data()
	d.mask = make([]float64, len(data))
	keep := 1 - d.P
	for i := range data {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
		}
		data[i] *= d.mask[i]
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dout.Clone()
	}
	out := dout.Clone()
	data := out.Data()
	for i := range data {
		data[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (d *Dropout) Clone() Layer { return &Dropout{P: d.P, rng: d.rng} }
