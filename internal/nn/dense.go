package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b for a batch x of
// shape (B, in), with W of shape (in, out) and b of shape (out).
type Dense struct {
	In, Out int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor
	x      *tensor.Tensor // cached input for backward
}

// NewDense returns a Dense layer with Xavier-uniform weights and zero bias.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		w:  tensor.New(in, out).FillXavier(rng, in, out),
		b:  tensor.New(out),
		dw: tensor.New(in, out),
		db: tensor.New(out),
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense forward shape %v, want (B, %d)", x.Shape(), d.In))
	}
	d.x = x
	return tensor.MatMul(x, d.w).AddRowVector(d.b)
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense backward before forward")
	}
	d.dw.AddInPlace(tensor.MatMulTransA(d.x, dout))
	d.db.AddInPlace(dout.ColSums())
	return tensor.MatMulTransB(dout, d.w)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dw, d.db} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		w: d.w.Clone(), b: d.b.Clone(),
		dw: d.dw.Clone(), db: d.db.Clone(),
	}
}
