package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// Dense is a fully connected layer computing y = x·W + b for a batch x of
// shape (B, in), with W of shape (in, out) and b of shape (out).
type Dense struct {
	In, Out int

	w, b   *tensor.Tensor
	dw, db *tensor.Tensor
	x      *tensor.Tensor // cached input for backward

	// Scratch reused across steps (see scratch.go).
	out, dx, dwTmp *tensor.Tensor
}

// NewDense returns a Dense layer with Xavier-uniform weights and zero bias.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		w:  tensor.New(in, out).FillXavier(rng, in, out),
		b:  tensor.New(out),
		dw: tensor.New(in, out),
		db: tensor.New(out),
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense forward shape %v, want (B, %d)", x.Shape(), d.In))
	}
	d.x = x
	d.out = ensure2(d.out, x.Dim(0), d.Out)
	tensor.MatMulInto(d.out, x, d.w)
	return d.out.AddRowVector(d.b)
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense backward before forward")
	}
	d.dwTmp = ensure2(d.dwTmp, d.In, d.Out)
	tensor.MatMulTransAInto(d.dwTmp, d.x, dout)
	d.dw.AddInPlace(d.dwTmp)
	dout.AddColSumsInto(d.db)
	d.dx = ensure2(d.dx, dout.Dim(0), d.In)
	tensor.MatMulTransBInto(d.dx, dout, d.w)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dw, d.db} }

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		w: d.w.Clone(), b: d.b.Clone(),
		dw: d.dw.Clone(), db: d.db.Clone(),
	}
}
