package nn

import (
	"fmt"
	"math/rand"

	"helcfl/internal/tensor"
)

// Fire is the SqueezeNet Fire module: a 1×1 "squeeze" convolution followed
// by ReLU, feeding two parallel "expand" convolutions (1×1 and 3×3, the
// latter with same-padding) whose ReLU outputs are concatenated along the
// channel axis. Output channels = E1 + E3.
type Fire struct {
	InC, S, E1, E3 int

	squeeze  *Conv2D
	sqReLU   *ReLU
	exp1     *Conv2D
	exp1ReLU *ReLU
	exp3     *Conv2D
	exp3ReLU *ReLU

	// Scratch reused across steps (see scratch.go).
	cat, d1, d3 *tensor.Tensor
}

// NewFire returns a Fire module with s squeeze filters and e1/e3 expand
// filters of each kind.
func NewFire(inC, s, e1, e3 int, rng *rand.Rand) *Fire {
	return &Fire{
		InC: inC, S: s, E1: e1, E3: e3,
		squeeze:  NewConv2D(inC, s, 1, 1, 1, 0, rng),
		sqReLU:   NewReLU(),
		exp1:     NewConv2D(s, e1, 1, 1, 1, 0, rng),
		exp1ReLU: NewReLU(),
		exp3:     NewConv2D(s, e3, 3, 3, 1, 1, rng),
		exp3ReLU: NewReLU(),
	}
}

// Name implements Layer.
func (f *Fire) Name() string {
	return fmt.Sprintf("Fire(in=%d, s=%d, e1=%d, e3=%d)", f.InC, f.S, f.E1, f.E3)
}

// Forward implements Layer.
func (f *Fire) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sq := f.sqReLU.Forward(f.squeeze.Forward(x, train), train)
	y1 := f.exp1ReLU.Forward(f.exp1.Forward(sq, train), train)
	y3 := f.exp3ReLU.Forward(f.exp3.Forward(sq, train), train)
	f.cat = ensure4(f.cat, y1.Dim(0), f.E1+f.E3, y1.Dim(2), y1.Dim(3))
	concatChannelsInto(f.cat, y1, y3)
	return f.cat
}

// Backward implements Layer.
func (f *Fire) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, h, w := dout.Dim(0), dout.Dim(2), dout.Dim(3)
	f.d1 = ensure4(f.d1, b, f.E1, h, w)
	f.d3 = ensure4(f.d3, b, f.E3, h, w)
	splitChannelsInto(f.d1, f.d3, dout)
	dsq1 := f.exp1.Backward(f.exp1ReLU.Backward(f.d1))
	dsq3 := f.exp3.Backward(f.exp3ReLU.Backward(f.d3))
	dsq := dsq1.AddInPlace(dsq3)
	return f.squeeze.Backward(f.sqReLU.Backward(dsq))
}

// Params implements Layer.
func (f *Fire) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	out = append(out, f.squeeze.Params()...)
	out = append(out, f.exp1.Params()...)
	out = append(out, f.exp3.Params()...)
	return out
}

// Grads implements Layer.
func (f *Fire) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	out = append(out, f.squeeze.Grads()...)
	out = append(out, f.exp1.Grads()...)
	out = append(out, f.exp3.Grads()...)
	return out
}

// Clone implements Layer.
func (f *Fire) Clone() Layer {
	return &Fire{
		InC: f.InC, S: f.S, E1: f.E1, E3: f.E3,
		squeeze:  f.squeeze.Clone().(*Conv2D),
		sqReLU:   NewReLU(),
		exp1:     f.exp1.Clone().(*Conv2D),
		exp1ReLU: NewReLU(),
		exp3:     f.exp3.Clone().(*Conv2D),
		exp3ReLU: NewReLU(),
	}
}

// concatChannelsInto concatenates two (B, C, H, W) tensors along the
// channel axis into dst of shape (B, Ca+Cb, H, W). Batch and spatial
// dimensions must agree. Allocation-free.
func concatChannelsInto(dst, a, b *tensor.Tensor) {
	if a.Rank() != 4 || b.Rank() != 4 {
		panic("nn: concatChannels needs rank-4 tensors")
	}
	ba, ca, h, w := a.Dim(0), a.Dim(1), a.Dim(2), a.Dim(3)
	bb, cb := b.Dim(0), b.Dim(1)
	if ba != bb || h != b.Dim(2) || w != b.Dim(3) {
		panic(fmt.Sprintf("nn: concatChannels mismatched shapes %v and %v", a.Shape(), b.Shape()))
	}
	if dst.Rank() != 4 || dst.Dim(0) != ba || dst.Dim(1) != ca+cb || dst.Dim(2) != h || dst.Dim(3) != w {
		panic(fmt.Sprintf("nn: concatChannels destination shape %v, want (%d, %d, %d, %d)", dst.Shape(), ba, ca+cb, h, w))
	}
	plane := h * w
	for bi := 0; bi < ba; bi++ {
		srcA := a.Data()[bi*ca*plane : (bi+1)*ca*plane]
		srcB := b.Data()[bi*cb*plane : (bi+1)*cb*plane]
		out := dst.Data()[bi*(ca+cb)*plane : (bi+1)*(ca+cb)*plane]
		copy(out[:ca*plane], srcA)
		copy(out[ca*plane:], srcB)
	}
}

// splitChannelsInto splits a (B, C, H, W) tensor into its first Ca channels
// (into a) and the remaining Cb channels (into b), the adjoint of
// concatChannelsInto. Allocation-free.
func splitChannelsInto(a, b, x *tensor.Tensor) {
	if x.Rank() != 4 || a.Rank() != 4 || b.Rank() != 4 {
		panic("nn: splitChannels needs rank-4 tensors")
	}
	bx, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	c1, c2 := a.Dim(1), b.Dim(1)
	if c1+c2 != c || a.Dim(0) != bx || b.Dim(0) != bx || a.Dim(2) != h || b.Dim(2) != h || a.Dim(3) != w || b.Dim(3) != w {
		panic(fmt.Sprintf("nn: splitChannels destinations %v + %v inconsistent with source %v", a.Shape(), b.Shape(), x.Shape()))
	}
	plane := h * w
	for bi := 0; bi < bx; bi++ {
		src := x.Data()[bi*c*plane : (bi+1)*c*plane]
		copy(a.Data()[bi*c1*plane:(bi+1)*c1*plane], src[:c1*plane])
		copy(b.Data()[bi*c2*plane:(bi+1)*c2*plane], src[c1*plane:])
	}
}
