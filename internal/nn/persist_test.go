package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.helcfl")
	spec := ModelSpec{Kind: "mlp", InC: 2, H: 4, W: 4, Classes: 3, Hidden: []int{8}}
	m := spec.Build(rand.New(rand.NewSource(1)))
	if err := SaveModel(path, spec, m); err != nil {
		t.Fatal(err)
	}
	spec2, m2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Kind != spec.Kind || spec2.Classes != spec.Classes || len(spec2.Hidden) != 1 {
		t.Fatalf("spec round trip: %+v", spec2)
	}
	a, b := m.GetFlatParams(), m2.GetFlatParams()
	if len(a) != len(b) {
		t.Fatal("param count changed")
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 { // float32 wire precision
			t.Fatalf("param %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestLoadModelRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.helcfl")

	if _, _, err := LoadModel(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must error")
	}
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("short file must error")
	}
	// Valid save, then corrupt the magic.
	spec := ModelSpec{Kind: "logistic", InC: 1, H: 2, W: 2, Classes: 2}
	m := spec.Build(rand.New(rand.NewSource(2)))
	if err := SaveModel(path, spec, m); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xFF
	_ = os.WriteFile(path, raw, 0o644)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("bad magic must error")
	}
	// Corrupt header length.
	if err := SaveModel(path, spec, m); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	raw[4] = 0xFF
	raw[5] = 0xFF
	_ = os.WriteFile(path, raw, 0o644)
	if _, _, err := LoadModel(path); err == nil {
		t.Fatal("truncated header must error")
	}
}
