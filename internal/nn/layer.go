// Package nn is a from-scratch neural-network substrate: layers with explicit
// forward/backward passes, losses, an SGD optimizer, model builders (MLP,
// logistic regression, and a SqueezeNet-style Fire-module CNN), and parameter
// (de)serialization.
//
// It exists because the HELCFL paper trains SqueezeNet on user devices; no
// mature Go deep-learning stack is available offline, so the training engine
// is built here on top of internal/tensor. All layers use a batch-first
// convention: dense layers take (B, features); convolutional layers take
// (B, C, H, W).
package nn

import "helcfl/internal/tensor"

// Layer is one differentiable stage of a network.
//
// Forward computes the layer output for a batch and caches whatever the
// backward pass needs. Backward consumes the gradient of the loss with
// respect to the layer output and returns the gradient with respect to the
// layer input, accumulating parameter gradients internally. A layer must be
// used in strict Forward-then-Backward order.
type Layer interface {
	// Name identifies the layer kind for diagnostics.
	Name() string
	// Forward runs the layer on a batch. train toggles train-time behaviour
	// (e.g. dropout); inference passes false.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input and accumulates
	// parameter gradients.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	// Mutating them changes the layer.
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors aligned 1:1 with Params.
	Grads() []*tensor.Tensor
	// Clone returns a deep copy with independent parameters and gradients.
	Clone() Layer
}

// zeroGrads clears a layer's accumulated gradients.
func zeroGrads(l Layer) {
	for _, g := range l.Grads() {
		g.Zero()
	}
}

// cloneTensors deep-copies a slice of tensors.
func cloneTensors(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}
