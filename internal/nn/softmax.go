package nn

import (
	"fmt"
	"math"

	"helcfl/internal/tensor"
)

// Softmax is a standalone row-wise softmax layer for models that must emit
// probabilities (the training path uses the fused SoftmaxCrossEntropy loss
// instead, which is cheaper and numerically cleaner).
type Softmax struct {
	out *tensor.Tensor
}

// NewSoftmax returns a Softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Name implements Layer.
func (s *Softmax) Name() string { return "Softmax" }

// Forward implements Layer.
func (s *Softmax) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: Softmax forward shape %v, want rank 2", x.Shape()))
	}
	b, k := x.Dim(0), x.Dim(1)
	out := tensor.New(b, k)
	xd, od := x.Data(), out.Data()
	for i := 0; i < b; i++ {
		row := xd[i*k : (i+1)*k]
		orow := od[i*k : (i+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	s.out = out
	return out
}

// Backward implements Layer: dx_i = y_i ⊙ (dy_i − ⟨dy_i, y_i⟩).
func (s *Softmax) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if s.out == nil {
		panic("nn: Softmax backward before forward")
	}
	b, k := s.out.Dim(0), s.out.Dim(1)
	dx := tensor.New(b, k)
	yd, dd, xd := s.out.Data(), dout.Data(), dx.Data()
	for i := 0; i < b; i++ {
		y := yd[i*k : (i+1)*k]
		dy := dd[i*k : (i+1)*k]
		dot := 0.0
		for j := range y {
			dot += dy[j] * y[j]
		}
		for j := range y {
			xd[i*k+j] = y[j] * (dy[j] - dot)
		}
	}
	return dx
}

// Params implements Layer.
func (s *Softmax) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*tensor.Tensor { return nil }

// Clone implements Layer.
func (s *Softmax) Clone() Layer { return &Softmax{} }
