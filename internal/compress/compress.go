// Package compress implements the model-upload compression schemes the
// paper positions HELCFL against (Section I): top-k sparsification (Sattler
// et al. [5]) and uniform scalar quantization (Shlezinger et al. [6]).
//
// HELCFL's thesis is that scheduling beats compression because compression
// "inevitably sacrifices model accuracy or introduces additional costs".
// These implementations make that comparison runnable: the FL engine can
// compress uploads, shrinking C_model in Eq. (7) at the cost of lossy
// parameter reconstruction.
package compress

import (
	"fmt"
	"math"
	"sort"
)

// Compressor transforms an upload parameter vector into its lossy,
// compressed-and-reconstructed form and accounts for the wire size.
type Compressor interface {
	// Name identifies the scheme in reports.
	Name() string
	// Apply returns the vector as the server will reconstruct it after
	// decompression. The input is not modified.
	Apply(flat []float64) []float64
	// BitsFor returns the wire size in bits of a compressed upload of n
	// parameters, the C_model to use in Eq. (7).
	BitsFor(n int) float64
}

// None is the identity compressor: fp32 uploads, as in the base system.
type None struct{}

// Name implements Compressor.
func (None) Name() string { return "none" }

// Apply implements Compressor.
func (None) Apply(flat []float64) []float64 {
	return append([]float64(nil), flat...)
}

// BitsFor implements Compressor: 32 bits per parameter plus an 8-byte
// header, matching nn.ParamBytes.
func (None) BitsFor(n int) float64 { return float64(8+4*n) * 8 }

// TopK keeps only the k = ⌈Fraction·n⌉ largest-magnitude parameters,
// zeroing the rest — magnitude sparsification. The wire format is k
// (index, value) pairs: 32 bits of index + 32 bits of value each.
type TopK struct {
	// Fraction is the kept fraction in (0, 1].
	Fraction float64
}

// NewTopK validates and returns a TopK compressor.
func NewTopK(fraction float64) TopK {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: top-k fraction %g outside (0,1]", fraction))
	}
	return TopK{Fraction: fraction}
}

// Name implements Compressor.
func (t TopK) Name() string { return fmt.Sprintf("topk(%.2f)", t.Fraction) }

// k returns the kept-coordinate count for n parameters (at least 1).
func (t TopK) k(n int) int {
	k := int(math.Ceil(t.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Apply implements Compressor.
func (t TopK) Apply(flat []float64) []float64 {
	n := len(flat)
	k := t.k(n)
	if k == n {
		return append([]float64(nil), flat...)
	}
	// Select the k largest magnitudes; ties broken by lower index to keep
	// the operation deterministic.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ma, mb := math.Abs(flat[idx[a]]), math.Abs(flat[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	out := make([]float64, n)
	for _, i := range idx[:k] {
		out[i] = flat[i]
	}
	return out
}

// BitsFor implements Compressor: k (index, value) pairs plus a header.
func (t TopK) BitsFor(n int) float64 {
	return float64(8+8*t.k(n)) * 8
}

// Uniform quantizes each parameter to Bits bits on a symmetric uniform
// grid spanning [-max|θ|, +max|θ|], with the scale sent once per upload.
type Uniform struct {
	// Bits per parameter, in [1, 16].
	Bits int
}

// NewUniform validates and returns a Uniform quantizer.
func NewUniform(bits int) Uniform {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("compress: quantizer bits %d outside [1,16]", bits))
	}
	return Uniform{Bits: bits}
}

// Name implements Compressor.
func (u Uniform) Name() string { return fmt.Sprintf("quant(%db)", u.Bits) }

// Apply implements Compressor.
func (u Uniform) Apply(flat []float64) []float64 {
	n := len(flat)
	out := make([]float64, n)
	maxAbs := 0.0
	for _, v := range flat {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return out
	}
	levels := float64(int(1)<<(u.Bits-1)) - 1 // symmetric signed grid
	if levels < 1 {
		levels = 1
	}
	scale := maxAbs / levels
	for i, v := range flat {
		q := math.Round(v / scale)
		if q > levels {
			q = levels
		}
		if q < -levels {
			q = -levels
		}
		out[i] = q * scale
	}
	return out
}

// BitsFor implements Compressor: Bits per parameter plus a 32-bit scale and
// the 8-byte header.
func (u Uniform) BitsFor(n int) float64 {
	return float64(8)*8 + 32 + float64(u.Bits)*float64(n)
}

// Ratio returns the compression ratio of c for an n-parameter model
// relative to fp32 uploads.
func Ratio(c Compressor, n int) float64 {
	return None{}.BitsFor(n) / c.BitsFor(n)
}
