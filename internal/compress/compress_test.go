package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestNoneIsIdentity(t *testing.T) {
	v := randVec(64, 1)
	out := None{}.Apply(v)
	for i := range v {
		if out[i] != v[i] {
			t.Fatal("None must not change values")
		}
	}
	out[0] = 99
	if v[0] == 99 {
		t.Fatal("None must copy, not alias")
	}
	if (None{}).BitsFor(10) != float64(8+40)*8 {
		t.Fatalf("None bits = %g", (None{}).BitsFor(10))
	}
}

func TestTopKKeepsLargestMagnitudes(t *testing.T) {
	v := []float64{0.1, -5, 0.3, 4, -0.2}
	out := NewTopK(0.4).Apply(v) // k = 2
	want := []float64{0, -5, 0, 4, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestTopKFullFractionIsLossless(t *testing.T) {
	v := randVec(32, 2)
	out := NewTopK(1.0).Apply(v)
	for i := range v {
		if out[i] != v[i] {
			t.Fatal("fraction 1.0 must keep everything")
		}
	}
}

func TestTopKAtLeastOneCoordinate(t *testing.T) {
	v := []float64{1, 2, 3}
	out := NewTopK(0.01).Apply(v)
	nonzero := 0
	for _, x := range out {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("kept %d coordinates, want 1", nonzero)
	}
	if out[2] != 3 {
		t.Fatal("must keep the largest magnitude")
	}
}

func TestTopKBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(0)
}

func TestTopKBitsSmallerThanNone(t *testing.T) {
	n := 1000
	tk := NewTopK(0.1)
	if tk.BitsFor(n) >= (None{}).BitsFor(n) {
		t.Fatal("top-k 10% must shrink uploads")
	}
	if Ratio(tk, n) < 3 {
		t.Fatalf("ratio = %g, want ≈5", Ratio(tk, n))
	}
}

// Property: top-k output is always supported on the k largest magnitudes
// and preserves kept values exactly.
func TestTopKSupportQuick(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		frac := 0.05 + float64(fracRaw%90)/100.0
		v := randVec(50, seed)
		tk := NewTopK(frac)
		out := tk.Apply(v)
		kept := 0
		minKept := math.Inf(1)
		for i := range out {
			if out[i] != 0 {
				if out[i] != v[i] {
					return false // kept values must be exact
				}
				kept++
				if a := math.Abs(v[i]); a < minKept {
					minKept = a
				}
			}
		}
		if kept != tk.k(50) {
			return false
		}
		// No dropped coordinate may exceed the smallest kept magnitude.
		for i := range out {
			if out[i] == 0 && math.Abs(v[i]) > minKept+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformQuantizationErrorBound(t *testing.T) {
	v := randVec(500, 3)
	for _, bits := range []int{4, 8, 12} {
		q := NewUniform(bits)
		out := q.Apply(v)
		maxAbs := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		levels := float64(int(1)<<(bits-1)) - 1
		bound := maxAbs / levels / 2
		for i := range v {
			if math.Abs(out[i]-v[i]) > bound+1e-12 {
				t.Fatalf("bits=%d: error %g exceeds half-step %g", bits, math.Abs(out[i]-v[i]), bound)
			}
		}
	}
}

func TestUniformZeroVector(t *testing.T) {
	out := NewUniform(8).Apply(make([]float64, 10))
	for _, x := range out {
		if x != 0 {
			t.Fatal("zero vector must stay zero")
		}
	}
}

func TestUniformMoreBitsLessError(t *testing.T) {
	v := randVec(200, 4)
	err := func(bits int) float64 {
		out := NewUniform(bits).Apply(v)
		s := 0.0
		for i := range v {
			s += (out[i] - v[i]) * (out[i] - v[i])
		}
		return s
	}
	if err(4) <= err(8) || err(8) <= err(12) {
		t.Fatalf("quantization error must shrink with bits: %g, %g, %g", err(4), err(8), err(12))
	}
}

func TestUniformBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(0)
}

func TestUniformBitsAccounting(t *testing.T) {
	q := NewUniform(8)
	if got := q.BitsFor(1000); got != 64+32+8000 {
		t.Fatalf("bits = %g", got)
	}
	if Ratio(q, 100000) < 3.9 {
		t.Fatalf("8-bit ratio = %g, want ≈4", Ratio(q, 100000))
	}
}

// Property: quantization is idempotent — re-quantizing the reconstruction
// changes nothing (values already sit on the grid and share the max).
func TestUniformIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		v := randVec(40, seed)
		q := NewUniform(6)
		once := q.Apply(v)
		twice := q.Apply(once)
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
