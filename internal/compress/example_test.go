package compress_test

import (
	"fmt"

	"helcfl/internal/compress"
)

// Top-k sparsification keeps only the largest-magnitude coordinates of a
// model update, shrinking C_model in Eq. (7) at the cost of a lossy
// reconstruction.
func ExampleTopK() {
	delta := []float64{0.05, -2.0, 0.3, 1.5, -0.1}
	tk := compress.NewTopK(0.4) // keep 40% → 2 of 5 coordinates
	fmt.Println(tk.Apply(delta))
	// Keeping 10% of a big model gives ~5x smaller uploads (each kept
	// coordinate ships an index alongside its value).
	fmt.Printf("%.1fx smaller\n", compress.Ratio(compress.NewTopK(0.1), 100000))
	// Output:
	// [0 -2 0 1.5 0]
	// 5.0x smaller
}

func ExampleUniform() {
	q := compress.NewUniform(8)
	fmt.Printf("%.1fx smaller than fp32\n", compress.Ratio(q, 100000))
	// Output:
	// 4.0x smaller than fp32
}
