package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultError is the transport error surfaced for injected drops and
// blackholes, so logs distinguish chaos from genuine network failures.
// net/http wraps it in *url.Error on the way back to the caller.
type FaultError struct {
	Fault Fault
	Path  string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s on %s", e.Fault, e.Path)
}

// Transport is an http.RoundTripper that consults a Script before (and for
// blackholes, after) delegating to Base. Give each simulated device its own
// Transport carrying its User identity and share one Script among them; the
// script then addresses faults per-user even on requests that do not carry a
// user query parameter (e.g. /model fetches).
type Transport struct {
	// Base performs real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Script is the fault schedule; nil disables injection entirely.
	Script *Script
	// User is this transport's device identity; Any when the transport is
	// not tied to one device (the user query parameter is used instead).
	User int
}

// NewTransport returns a fault-injecting transport for one device over the
// default HTTP transport.
func NewTransport(script *Script, user int) *Transport {
	return &Transport{Script: script, User: user}
}

// Client returns an *http.Client that routes through the transport.
func (t *Transport) Client() *http.Client { return &http.Client{Transport: t} }

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Script == nil {
		return t.base().RoundTrip(req)
	}
	user := t.User
	if user == Any {
		user = queryInt(req.URL.RawQuery, "user")
	}
	round := queryInt(req.URL.RawQuery, "round")
	d := t.Script.decide(req.URL.Path, round, user)

	if d.latency > 0 {
		timer := time.NewTimer(d.latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	switch d.fault {
	case FaultDrop:
		// The request never reaches the server; drain the body like a real
		// transport would have.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return nil, &FaultError{Fault: FaultDrop, Path: req.URL.Path}
	case Fault5xx:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return &http.Response{
			Status:     "500 chaos internal server error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("chaos injected 500")),
			Request: req,
		}, nil
	case FaultBlackholeResponse:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, &FaultError{Fault: FaultBlackholeResponse, Path: req.URL.Path}
	case FaultDuplicate:
		if first, ok := cloneRequest(req); ok {
			if resp, err := t.base().RoundTrip(first); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
		return t.base().RoundTrip(req)
	}
	return t.base().RoundTrip(req)
}

// cloneRequest duplicates a request including a replayable body; ok is false
// when the body cannot be replayed (no GetBody), in which case duplication
// degrades to a single delivery.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	clone := req.Clone(req.Context())
	if req.Body == nil {
		return clone, true
	}
	if req.GetBody == nil {
		return nil, false
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	clone.Body = body
	return clone, true
}

// Listener wraps a net.Listener and immediately resets the first KillFirst
// accepted connections — the server-side complement to FaultDrop, exercising
// client reconnect/retry paths deterministically.
type Listener struct {
	net.Listener

	mu            sync.Mutex
	killRemaining int
	killed        int
}

// WrapListener returns a Listener that kills the first killFirst accepted
// connections.
func WrapListener(l net.Listener, killFirst int) *Listener {
	return &Listener{Listener: l, killRemaining: killFirst}
}

// Killed reports how many connections were reset.
func (l *Listener) Killed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.killed
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		kill := l.killRemaining > 0
		if kill {
			l.killRemaining--
			l.killed++
		}
		l.mu.Unlock()
		if !kill {
			return c, nil
		}
		_ = c.Close()
	}
}
