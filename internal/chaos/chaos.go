// Package chaos is a deterministic fault-injection harness for the deploy
// transport. A Script is a list of Rules matched against outgoing HTTP
// requests by path, FL round, and user; a matching rule injects one fault:
// a dropped request, a dropped (blackholed) response, added latency, a
// synthesized 5xx, or a duplicated delivery. Because rules are matched on
// protocol coordinates rather than wall-clock timing, the same script
// produces the same fault sequence on every run — chaos tests stay
// deterministic and race-clean.
//
// Reordering is expressed with latency rules: delaying one user's request
// lets another user's later request arrive first, which is exactly the
// delivery reordering a real network produces.
//
// A Script may additionally carry seeded RandomFaults for soak testing;
// random draws are serialized under the script's lock so a fixed seed yields
// a reproducible draw sequence for a given request arrival order.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault enumerates the injectable failure modes.
type Fault int

// The fault kinds.
const (
	// FaultNone matches without injecting anything (useful to count traffic).
	FaultNone Fault = iota
	// FaultDrop fails the request before it reaches the server, like a lost
	// uplink packet: the caller sees a transport error.
	FaultDrop
	// FaultBlackholeResponse delivers the request to the server, then
	// discards the response and returns a transport error — the fault that
	// exposes non-idempotent handlers, because the server has already acted.
	FaultBlackholeResponse
	// FaultLatency delays the request by Rule.Latency before sending it.
	FaultLatency
	// Fault5xx short-circuits the request with a synthesized 500 response;
	// the server never sees it.
	Fault5xx
	// FaultDuplicate sends the request twice back-to-back (at-least-once
	// delivery); the first response is discarded and the second returned.
	FaultDuplicate
)

// String names the fault for test output.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultBlackholeResponse:
		return "blackhole-response"
	case FaultLatency:
		return "latency"
	case Fault5xx:
		return "5xx"
	case FaultDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Any is the wildcard value for Rule.Round and Rule.User.
const Any = -1

// Rule schedules one fault against matching requests. Zero-valued selector
// fields are wildcards for Path ("" matches every path); Round and User use
// Any (-1) as the wildcard, so the zero Rule must set them explicitly.
type Rule struct {
	// Path matches the request URL path exactly (e.g. "/upload");
	// "" matches every path.
	Path string
	// Round matches the round query parameter; Any matches every round and
	// also requests that carry no round (e.g. /poll, /register).
	Round int
	// User matches the transport's User identity (per-client transports) or,
	// when the transport has no identity, the user query parameter.
	// Any matches everyone.
	User int
	// Fault is the injected failure; Latency parameterizes FaultLatency.
	Fault   Fault
	Latency time.Duration
	// Count caps how many times this rule fires; 0 means unlimited.
	Count int

	applied int
}

// RandomFaults is the seeded soak-testing mode: every request not claimed by
// a Rule draws faults independently with the given probabilities.
type RandomFaults struct {
	// Seed fixes the draw sequence.
	Seed int64
	// DropProb and Err5xxProb are per-request probabilities.
	DropProb, Err5xxProb float64
	// MaxLatency, when positive, adds a uniform random delay in
	// [0, MaxLatency) to every request.
	MaxLatency time.Duration
}

// Script is a concurrency-safe fault schedule shared by one or more
// Transports. Rules are consulted in order; the first live match claims the
// request.
type Script struct {
	mu     sync.Mutex
	rules  []*Rule
	random *RandomFaults
	rng    *rand.Rand

	requests int64
	injected map[Fault]int64
}

// NewScript builds a schedule from rules (copied; the caller's slice is not
// retained).
func NewScript(rules ...Rule) *Script {
	s := &Script{injected: map[Fault]int64{}}
	for i := range rules {
		r := rules[i]
		s.rules = append(s.rules, &r)
	}
	return s
}

// WithRandom arms the seeded random-fault mode and returns the script.
func (s *Script) WithRandom(rf RandomFaults) *Script {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.random = &rf
	s.rng = rand.New(rand.NewSource(rf.Seed))
	return s
}

// Requests reports how many requests the script has inspected.
func (s *Script) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Injected reports how many faults of each kind fired.
func (s *Script) Injected() map[Fault]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Fault]int64, len(s.injected))
	for k, v := range s.injected {
		out[k] = v
	}
	return out
}

// decision is the script's verdict for one request.
type decision struct {
	fault   Fault
	latency time.Duration
}

// decide claims the first matching live rule (or a random draw) for the
// request identified by (path, round, user); round/user are Any when the
// request does not carry them.
func (s *Script) decide(path string, round, user int) decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	for _, r := range s.rules {
		if !r.matches(path, round, user) {
			continue
		}
		if r.Count > 0 && r.applied >= r.Count {
			continue
		}
		r.applied++
		s.injected[r.Fault]++
		return decision{fault: r.Fault, latency: r.Latency}
	}
	if s.random != nil {
		if s.random.MaxLatency > 0 {
			d := time.Duration(s.rng.Int63n(int64(s.random.MaxLatency)))
			if s.rng.Float64() < s.random.DropProb {
				s.injected[FaultDrop]++
				return decision{fault: FaultDrop, latency: d}
			}
			if s.rng.Float64() < s.random.Err5xxProb {
				s.injected[Fault5xx]++
				return decision{fault: Fault5xx}
			}
			s.injected[FaultLatency]++
			return decision{fault: FaultLatency, latency: d}
		}
		if s.rng.Float64() < s.random.DropProb {
			s.injected[FaultDrop]++
			return decision{fault: FaultDrop}
		}
		if s.rng.Float64() < s.random.Err5xxProb {
			s.injected[Fault5xx]++
			return decision{fault: Fault5xx}
		}
	}
	return decision{fault: FaultNone}
}

func (r *Rule) matches(path string, round, user int) bool {
	if r.Path != "" && r.Path != path {
		return false
	}
	if r.Round != Any && r.Round != round {
		return false
	}
	if r.User != Any && r.User != user {
		return false
	}
	return true
}

// queryInt extracts an integer query parameter from a raw query string,
// returning Any when absent or malformed. Implemented without net/url
// parsing allocations on the hot path.
func queryInt(rawQuery, key string) int {
	for rawQuery != "" {
		var pair string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		if len(pair) > len(key) && pair[:len(key)] == key && pair[len(key)] == '=' {
			if v, err := strconv.Atoi(pair[len(key)+1:]); err == nil {
				return v
			}
			return Any
		}
	}
	return Any
}
