package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, c *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body), nil
}

func TestRuleMatching(t *testing.T) {
	cases := []struct {
		name              string
		rule              Rule
		path              string
		round, user, want int // want: 1 match, 0 no match
	}{
		{"wildcards", Rule{Path: "", Round: Any, User: Any}, "/upload", 3, 7, 1},
		{"path match", Rule{Path: "/upload", Round: Any, User: Any}, "/upload", 0, 0, 1},
		{"path mismatch", Rule{Path: "/upload", Round: Any, User: Any}, "/poll", 0, 0, 0},
		{"round match", Rule{Path: "", Round: 2, User: Any}, "/model", 2, Any, 1},
		{"round mismatch", Rule{Path: "", Round: 2, User: Any}, "/model", 3, Any, 0},
		{"user match", Rule{Path: "", Round: Any, User: 5}, "/poll", Any, 5, 1},
		{"user mismatch", Rule{Path: "", Round: Any, User: 5}, "/poll", Any, 4, 0},
	}
	for _, tc := range cases {
		got := 0
		if tc.rule.matches(tc.path, tc.round, tc.user) {
			got = 1
		}
		if got != tc.want {
			t.Errorf("%s: matches=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRuleCountCap(t *testing.T) {
	s := NewScript(Rule{Path: "/x", Round: Any, User: Any, Fault: FaultDrop, Count: 2})
	for i, want := range []Fault{FaultDrop, FaultDrop, FaultNone, FaultNone} {
		if d := s.decide("/x", Any, Any); d.fault != want {
			t.Fatalf("request %d: fault=%s, want %s", i, d.fault, want)
		}
	}
	if got := s.Injected()[FaultDrop]; got != 2 {
		t.Fatalf("injected drops = %d, want 2", got)
	}
	if got := s.Requests(); got != 4 {
		t.Fatalf("requests = %d, want 4", got)
	}
}

func TestQueryInt(t *testing.T) {
	cases := []struct {
		raw, key string
		want     int
	}{
		{"user=3&round=7", "round", 7},
		{"user=3&round=7", "user", 3},
		{"user=3", "round", Any},
		{"round=x", "round", Any},
		{"", "round", Any},
		{"rounds=9", "round", Any},
	}
	for _, tc := range cases {
		if got := queryInt(tc.raw, tc.key); got != tc.want {
			t.Errorf("queryInt(%q, %q) = %d, want %d", tc.raw, tc.key, got, tc.want)
		}
	}
}

func TestTransportDropAnd5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = io.WriteString(w, "ok")
	}))
	defer ts.Close()

	script := NewScript(
		Rule{Path: "/drop", Round: Any, User: Any, Fault: FaultDrop},
		Rule{Path: "/boom", Round: Any, User: Any, Fault: Fault5xx},
	)
	client := NewTransport(script, 0).Client()

	if _, _, err := get(t, client, ts.URL+"/drop"); err == nil {
		t.Fatal("dropped request returned no error")
	} else {
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Fault != FaultDrop {
			t.Fatalf("dropped request error = %v, want FaultError{FaultDrop}", err)
		}
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server (%d hits)", hits.Load())
	}

	resp, body, err := get(t, client, ts.URL+"/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("5xx fault status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "chaos") {
		t.Fatalf("5xx body = %q", body)
	}
	if hits.Load() != 0 {
		t.Fatalf("synthesized 5xx reached the server (%d hits)", hits.Load())
	}

	// Unmatched paths pass through untouched.
	resp, body, err = get(t, client, ts.URL+"/fine")
	if err != nil || resp.StatusCode != http.StatusOK || body != "ok" {
		t.Fatalf("clean request: %v %v %q", err, resp, body)
	}
}

func TestTransportBlackholeDeliversToServer(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	script := NewScript(Rule{Path: "/up", Round: Any, User: Any, Fault: FaultBlackholeResponse, Count: 1})
	client := NewTransport(script, 0).Client()

	if _, _, err := get(t, client, ts.URL+"/up"); err == nil {
		t.Fatal("blackholed response returned no error")
	}
	if hits.Load() != 1 {
		t.Fatalf("blackholed request hits = %d, want 1 (must reach server)", hits.Load())
	}
	// Second attempt passes (Count=1 exhausted): the retry-after-blackhole
	// pattern the deploy client relies on.
	if _, _, err := get(t, client, ts.URL+"/up"); err != nil {
		t.Fatalf("post-blackhole request: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

func TestTransportDuplicatePost(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(b))
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	script := NewScript(Rule{Path: "/up", Round: Any, User: Any, Fault: FaultDuplicate, Count: 1})
	client := NewTransport(script, 0).Client()

	resp, err := client.Post(ts.URL+"/up", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 || bodies[0] != "payload" || bodies[1] != "payload" {
		t.Fatalf("server saw bodies %q, want payload twice", bodies)
	}
}

func TestTransportLatencyDelays(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	const delay = 40 * time.Millisecond
	script := NewScript(Rule{Path: "/slow", Round: Any, User: Any, Fault: FaultLatency, Latency: delay})
	client := NewTransport(script, 0).Client()

	start := time.Now()
	if _, _, err := get(t, client, ts.URL+"/slow"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("latency fault took %v, want >= %v", took, delay)
	}
}

func TestTransportPerUserIdentity(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()

	// User 1's model fetches are dropped even though /model carries no user
	// query parameter — identity comes from the transport.
	script := NewScript(Rule{Path: "/model", Round: Any, User: 1, Fault: FaultDrop})
	c0 := NewTransport(script, 0).Client()
	c1 := NewTransport(script, 1).Client()

	if _, _, err := get(t, c0, ts.URL+"/model?round=0"); err != nil {
		t.Fatalf("user 0 fetch: %v", err)
	}
	if _, _, err := get(t, c1, ts.URL+"/model?round=0"); err == nil {
		t.Fatal("user 1 fetch should have been dropped")
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}
}

func TestRandomFaultsDeterministicSequence(t *testing.T) {
	draw := func() []Fault {
		s := NewScript().WithRandom(RandomFaults{Seed: 42, DropProb: 0.3, Err5xxProb: 0.3})
		var seq []Fault
		for i := 0; i < 64; i++ {
			seq = append(seq, s.decide("/x", Any, Any).fault)
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	kinds := map[Fault]bool{}
	for _, f := range a {
		kinds[f] = true
	}
	if !kinds[FaultDrop] || !kinds[Fault5xx] || !kinds[FaultNone] {
		t.Fatalf("64 draws at p=0.3 produced kinds %v, want drop+5xx+none", kinds)
	}
}

func TestWrapListenerKillsFirstConnections(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := WrapListener(inner, 2)
	ts := &httptest.Server{
		Listener: l,
		Config:   &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})},
	}
	ts.Start()
	defer ts.Close()

	// Fresh connections (no keep-alive reuse) so each request maps to one
	// accepted connection.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	failures := 0
	for i := 0; i < 4; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			failures++
			continue
		}
		resp.Body.Close()
	}
	if l.Killed() != 2 {
		t.Fatalf("killed = %d, want 2", l.Killed())
	}
	if failures == 0 {
		t.Fatal("no client-visible failures despite killed connections")
	}
}
