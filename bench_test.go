package helcfl

// The benchmark harness regenerates every evaluation artifact of the paper:
//
//	BenchmarkFig1Timeline — Fig. 1 slack illustration + Algorithm 3 plan
//	BenchmarkFig2IID / BenchmarkFig2NonIID — Fig. 2 accuracy campaigns
//	BenchmarkTableI — Table I (delay to desired accuracy, both settings)
//	BenchmarkFig3IID / BenchmarkFig3NonIID — Fig. 3 DVFS energy reduction
//	BenchmarkFig3SlackRich — the slack-rich regime of DESIGN.md
//	BenchmarkAblation* — η sweep, C sweep, Algorithm 3 clamping study
//
// plus micro-benchmarks of the scheduler and substrate hot paths. Campaign
// benchmarks use the Tiny preset so `go test -bench=.` completes in
// minutes; run the CLI with -preset paper for full-scale artifacts.

import (
	"math/rand"
	"testing"

	"helcfl/internal/core"
	"helcfl/internal/device"
	"helcfl/internal/experiments"
	"helcfl/internal/fl"
	"helcfl/internal/nn"
	"helcfl/internal/obs"
	"helcfl/internal/sim"
	"helcfl/internal/tensor"
	"helcfl/internal/wireless"
)

// reportRoundDelays attaches per-run histogram summaries (simulated round
// makespan from the obs registry snapshot) to a campaign benchmark's output,
// so `go test -bench` tracks scheduling regressions alongside wall time.
func reportRoundDelays(b *testing.B, ms *obs.MetricsSink) {
	b.Helper()
	h := ms.RoundDelay()
	if h.Count() == 0 {
		return
	}
	snap := h.Snapshot()
	b.ReportMetric(h.Mean(), "sim-round-mean-s")
	b.ReportMetric(snap.Quantile(0.5), "sim-round-p50-s")
	b.ReportMetric(snap.Quantile(0.99), "sim-round-p99-s")
}

// --- Figure/table campaign benchmarks -----------------------------------

func BenchmarkFig1Timeline(b *testing.B) {
	p := TinyPreset()
	for i := 0; i < b.N; i++ {
		demo, err := experiments.RunFig1Demo(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if demo.WithDVFS.Makespan > demo.MaxFreq.Makespan+1e-9 {
			b.Fatal("DVFS lengthened the round")
		}
	}
}

func benchFig2(b *testing.B, s Setting) {
	b.Helper()
	p := TinyPreset()
	ms := obs.NewMetricsSink(obs.NewRegistry())
	p.Sink = ms
	for i := 0; i < b.N; i++ {
		fig, err := RunFig2(p, s, 1)
		if err != nil {
			b.Fatal(err)
		}
		if fig.Curve("HELCFL").Best() <= fig.Curve("SL").Best() {
			b.Fatal("campaign produced nonsense ordering")
		}
	}
	reportRoundDelays(b, ms)
}

func BenchmarkFig2IID(b *testing.B)    { benchFig2(b, IID) }
func BenchmarkFig2NonIID(b *testing.B) { benchFig2(b, NonIID) }

func BenchmarkTableI(b *testing.B) {
	p := TinyPreset()
	for i := 0; i < b.N; i++ {
		tbl, _, err := RunTableI(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Settings) != 2 {
			b.Fatal("missing settings")
		}
	}
}

func benchFig3(b *testing.B, s Setting, p Preset) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f3, err := RunFig3(p, s, 1)
		if err != nil {
			b.Fatal(err)
		}
		ok := false
		for i := range f3.Targets {
			if f3.Reached[i] && f3.ReductionPct[i] > 0 {
				ok = true
			}
		}
		if !ok {
			b.Fatal("no DVFS reduction measured")
		}
	}
}

func BenchmarkFig3IID(b *testing.B)    { benchFig3(b, IID, TinyPreset()) }
func BenchmarkFig3NonIID(b *testing.B) { benchFig3(b, NonIID, TinyPreset()) }
func BenchmarkFig3SlackRich(b *testing.B) {
	benchFig3(b, IID, SlackRichPreset(TinyPreset()))
}

func BenchmarkAblationEta(b *testing.B) {
	p := TinyPreset()
	p.MaxRounds = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEtaAblation(p, NonIID, 1, []float64{0.5, 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFraction(b *testing.B) {
	p := TinyPreset()
	p.MaxRounds = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFractionAblation(p, IID, 1, []float64{0.125, 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClamp(b *testing.B) {
	p := TinyPreset()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClampAblation(p, IID, 1, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead ----------------------------------------------

// benchEngineEnv builds a short shared campaign environment for the sink
// overhead measurements.
func benchEngineEnv(tb testing.TB) *experiments.Env {
	tb.Helper()
	p := TinyPreset()
	p.MaxRounds = 3
	env, err := BuildEnv(p, IID, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return env
}

func engineRun(tb testing.TB, env *experiments.Env, sink obs.EventSink) {
	tb.Helper()
	if _, _, err := experiments.RunSchemeWith(env, "HELCFL", func(c *fl.Config) { c.Sink = sink }); err != nil {
		tb.Fatal(err)
	}
}

// TestNilSinkIsCheaperThanNopSink pins the engine's design guarantee that a
// nil Config.Sink adds zero allocations to the round hot path: every
// event-related allocation (span buffers, event structs, detail slices) is
// guarded by the sink check, so attaching even a no-op sink must cost
// strictly more. If this fails, an event allocation escaped its guard.
func TestNilSinkIsCheaperThanNopSink(t *testing.T) {
	env := benchEngineEnv(t)
	nilAllocs := testing.AllocsPerRun(2, func() { engineRun(t, env, nil) })
	nopAllocs := testing.AllocsPerRun(2, func() { engineRun(t, env, obs.NopSink{}) })
	if nilAllocs >= nopAllocs {
		t.Fatalf("nil sink allocates %.0f/run, no-op sink %.0f/run: the nil fast path is gone", nilAllocs, nopAllocs)
	}
}

// BenchmarkEngineNilSink and BenchmarkEngineMetricsSink bound the cost of
// the event stream; compare allocs/op between the two to see what a full
// metrics pipeline costs per campaign.
func BenchmarkEngineNilSink(b *testing.B) {
	env := benchEngineEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineRun(b, env, nil)
	}
}

func BenchmarkEngineMetricsSink(b *testing.B) {
	env := benchEngineEnv(b)
	ms := obs.NewMetricsSink(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineRun(b, env, ms)
	}
	reportRoundDelays(b, ms)
}

// --- Scheduler micro-benchmarks ------------------------------------------

func benchFleet(n int) []*device.Device {
	cfg := device.DefaultCatalogConfig()
	cfg.Q = n
	devs := device.NewCatalog(cfg, rand.New(rand.NewSource(1)))
	for i, d := range devs {
		d.NumSamples = 40 + i%20
	}
	return devs
}

func BenchmarkSelectRound100Users(b *testing.B) {
	devs := benchFleet(100)
	s, err := core.NewScheduler(devs, wireless.DefaultChannel(), 4e5, core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SelectRound()
	}
}

func BenchmarkFrequencyPlan10Users(b *testing.B) {
	devs := benchFleet(10)
	ch := wireless.DefaultChannel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FrequencyPlan(devs, ch, 4e5, 1, true)
	}
}

func BenchmarkSimulateRound10Users(b *testing.B) {
	devs := benchFleet(10)
	ch := wireless.DefaultChannel()
	freqs := sim.MaxFrequencies(devs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SimulateRound(devs, freqs, ch, 4e5, 1)
	}
}

func BenchmarkScheduleTDMA100(b *testing.B) {
	reqs := make([]wireless.UploadRequest, 100)
	rng := rand.New(rand.NewSource(2))
	for i := range reqs {
		reqs[i] = wireless.UploadRequest{User: i, ComputeDone: rng.Float64() * 10, Duration: 0.1 + rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wireless.ScheduleTDMA(reqs)
	}
}

// --- Training substrate micro-benchmarks ---------------------------------

func BenchmarkLocalUpdateMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	spec := nn.ModelSpec{Kind: "mlp", InC: 3, H: 8, W: 8, Classes: 10, Hidden: []int{64}}
	model := spec.Build(rng)
	env, err := BuildEnv(TinyPreset(), IID, 1)
	if err != nil {
		b.Fatal(err)
	}
	client := fl.NewClient(0, env.UserData[0], model, true)
	flat := model.GetFlatParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.LocalUpdate(flat, 0.1, 1)
	}
}

func BenchmarkLocalUpdateSqueezeNetMini(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	spec := nn.ModelSpec{Kind: "squeezenet-mini", InC: 3, H: 8, W: 8, Classes: 10}
	model := spec.Build(rng)
	env, err := BuildEnv(TinyPreset(), IID, 1)
	if err != nil {
		b.Fatal(err)
	}
	client := fl.NewClient(0, env.UserData[0], model, false)
	flat := model.GetFlatParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.LocalUpdate(flat, 0.1, 1)
	}
}

func BenchmarkFedAvg10x100k(b *testing.B) {
	uploads := make([][]float64, 10)
	weights := make([]int, 10)
	rng := rand.New(rand.NewSource(5))
	for i := range uploads {
		u := make([]float64, 100_000)
		for j := range u {
			u[j] = rng.Float64()
		}
		uploads[i] = u
		weights[i] = 40 + i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.FedAvg(uploads, weights)
	}
}

func BenchmarkEvaluateMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	env, err := BuildEnv(TinyPreset(), IID, 1)
	if err != nil {
		b.Fatal(err)
	}
	model := env.Spec.Build(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Evaluate(model, env.Synth.Test, true)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(128, 128).FillNormal(rng, 0, 1)
	y := tensor.New(128, 128).FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkIm2Col8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(3, 8, 8).FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(x, 3, 3, 1, 1)
	}
}

func BenchmarkParamBytesRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	model := nn.NewMLP(192, []int{128}, 10, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := nn.ParamBytes(model)
		if err := nn.LoadParamBytes(model, payload); err != nil {
			b.Fatal(err)
		}
	}
}
