package helcfl

import (
	"strings"
	"testing"
)

func TestPresetConstructors(t *testing.T) {
	for _, p := range []Preset{PaperPreset(), FastPreset(), TinyPreset()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if PaperPreset().Users != 100 || PaperPreset().Fraction != 0.1 {
		t.Fatal("paper preset must match Section VII-A")
	}
	ub := SlackRichPreset(TinyPreset())
	if ub.CyclesPerUpdate >= TinyPreset().CyclesPerUpdate {
		t.Fatal("upload-bound preset must cut compute")
	}
}

func TestTrainEndToEnd(t *testing.T) {
	p := TinyPreset()
	p.MaxRounds = 12
	res, err := Train(p, IID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "HELCFL" {
		t.Fatalf("scheme = %s", res.Scheme)
	}
	if len(res.Records) != 12 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.BestAccuracy <= 0.15 {
		t.Fatalf("best accuracy %g at chance level", res.BestAccuracy)
	}
}

func TestRunSchemeViaFacade(t *testing.T) {
	p := TinyPreset()
	p.MaxRounds = 10
	env, err := BuildEnv(p, NonIID, 2)
	if err != nil {
		t.Fatal(err)
	}
	curve, res, err := RunScheme(env, "ClassicFL")
	if err != nil {
		t.Fatal(err)
	}
	if curve.Scheme != "ClassicFL" || res.Scheme != "ClassicFL" {
		t.Fatal("scheme labels wrong")
	}
	if len(curve.Points) == 0 {
		t.Fatal("empty curve")
	}
}

func TestRunTableIFacade(t *testing.T) {
	p := TinyPreset()
	p.MaxRounds = 16
	tbl, figs, err := RunTableI(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Settings) != 2 || len(figs) != 2 {
		t.Fatal("incomplete Table I campaign")
	}
}

func TestSchedulerParamsFromPreset(t *testing.T) {
	p := TinyPreset()
	sp := PresetSchedulerParams(p)
	if sp.Eta != p.Eta || sp.Fraction != p.Fraction {
		t.Fatal("params not derived from preset")
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewHELCFLPlannerFacade(t *testing.T) {
	env, err := BuildEnv(TinyPreset(), IID, 4)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewHELCFLPlanner(env, PresetSchedulerParams(env.Preset))
	if err != nil {
		t.Fatal(err)
	}
	sel, freqs := planner.PlanRound(0)
	if len(sel) == 0 || len(sel) != len(freqs) {
		t.Fatalf("plan sizes %d/%d", len(sel), len(freqs))
	}
	if !strings.Contains(planner.Name(), "HELCFL") {
		t.Fatalf("planner name %q", planner.Name())
	}
}

func TestSchemeOrderStable(t *testing.T) {
	want := []string{"HELCFL", "ClassicFL", "FedCS", "FEDL", "SL"}
	if len(SchemeOrder) != len(want) {
		t.Fatal("scheme order changed")
	}
	for i := range want {
		if SchemeOrder[i] != want[i] {
			t.Fatalf("SchemeOrder[%d] = %s, want %s", i, SchemeOrder[i], want[i])
		}
	}
}
